"""Proof certificates and their independent re-check.

A proof engine's "holds, unbounded" answer is only as trustworthy as
the engine's implementation, so every certificate is re-validated by a
**cold, independent solver** before anything downstream reports it:
fresh :class:`repro.proof.transition.TransitionSystem` (and, for
k-induction, a fresh :class:`repro.netmodel.bmc.IncrementalBMC`), no
shared learned clauses, no shared frames — just the certificate's
defining conditions as a handful of UNSAT queries.

Two certificate kinds:

* ``kinduction`` — records the induction depth ``k``.  Valid iff
  (1) *base*: no violating schedule of length ``≤ k`` exists from the
  real (empty) initial state, and (2) *step*: no length-``k+1``
  simple path from an arbitrary consistent state has the property
  clean for ``k`` steps and violated at step ``k``.  ``k=0`` is the
  degenerate (strongest) case: the violating event is impossible from
  *any* consistent state.

* ``ic3`` — records the inductive strengthening as blocked cubes over
  the state vocabulary (atom keys + rigid field pins; see
  :data:`repro.proof.transition.Lit`).  Valid iff the conjunction
  ``Inv`` of the blocking clauses satisfies (1) *initiation*:
  ``Init ⊨ Inv``, (2) *consecution*: ``Inv ∧ T ⊨ Inv'``, and
  (3) *property*: no violating event is possible from an ``Inv``
  state.

Certificates are plain picklable data keyed by *structural* names
(node, packet index, field), so they survive the result cache, worker
pools, and — the payoff — network deltas: an
:class:`repro.incremental.IncrementalSession` re-checks a cached
invariant against the re-built encoding of the changed network (three
queries) before it ever considers re-running a full proof search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..netmodel.bmc import IncrementalBMC, VerificationNetwork
from ..smt import SAT, UNSAT, And, Not
from .transition import Cube, TransitionSystem, clause_term

__all__ = [
    "ProofCertificate",
    "RecheckReport",
    "recheck_certificate",
    "MinimizeReport",
    "minimize_certificate",
]

KINDUCTION = "kinduction"
IC3 = "ic3"


@dataclass(frozen=True)
class ProofCertificate:
    """A checkable witness that an invariant holds unboundedly."""

    kind: str  # "kinduction" | "ic3"
    k: int = 0  # induction depth (kinduction only)
    clauses: Tuple[Cube, ...] = ()  # blocked cubes (ic3 only)
    #: Named configuration units (see :mod:`repro.provenance.blame`)
    #: whose protection the certificate's core queries rest on — the
    #: "why" carried alongside the proof.  Certificates pickled before
    #: this field existed lack the attribute entirely, so readers use
    #: ``getattr(cert, "blame", ())``.
    blame: Tuple[str, ...] = ()

    def summary(self) -> str:
        if self.kind == KINDUCTION:
            return f"{self.kind}(k={self.k})"
        lits = sum(len(c) for c in self.clauses)
        return f"{self.kind}({len(self.clauses)} clauses, {lits} literals)"

    def to_json(self) -> dict:
        """A JSON-serializable rendering (tuples become lists)."""
        out = {"kind": self.kind}
        if self.kind == KINDUCTION:
            out["k"] = self.k
        else:
            out["clauses"] = [
                [[list(key), value] for key, value in cube]
                for cube in self.clauses
            ]
            out["n_clauses"] = len(self.clauses)
        blame = getattr(self, "blame", ())
        if blame:
            out["blame"] = list(blame)
        return out

    @classmethod
    def from_json(cls, payload: dict) -> "ProofCertificate":
        blame = tuple(payload.get("blame", ()))
        if payload["kind"] == KINDUCTION:
            return cls(kind=KINDUCTION, k=int(payload["k"]), blame=blame)
        clauses = tuple(
            tuple((tuple(key), value) for key, value in cube)
            for cube in payload["clauses"]
        )
        return cls(kind=IC3, clauses=clauses, blame=blame)


@dataclass
class RecheckReport:
    """Outcome of one independent certificate validation."""

    ok: bool
    solver_checks: int
    reason: str = ""
    certificate: Optional[ProofCertificate] = field(default=None, repr=False)


def _simple_path_assumptions(ts: TransitionSystem, k: int):
    return [
        ts.distinct_states(t1, t2)
        for t1 in range(k + 1)
        for t2 in range(t1 + 1, k + 1)
    ]


def _recheck_kinduction(
    net: VerificationNetwork, invariant, cert: ProofCertificate, params: dict
) -> RecheckReport:
    checks = 0
    k = cert.k
    if k > 0:
        # Base: no violating schedule of length <= k from the real start.
        bmc = IncrementalBMC(
            net,
            n_packets=params["n_packets"],
            depth=k,
            failure_budget=params["failure_budget"],
            n_ports=params["n_ports"],
            n_tags=params["n_tags"],
        )
        checks += 1
        if bmc.check_at(invariant, k) != UNSAT:
            return RecheckReport(False, checks, f"base case fails at depth {k}")
    # Step: clean for k steps then violated, from an arbitrary state,
    # along a simple path — must be impossible.
    ts = TransitionSystem(
        net,
        n_packets=params["n_packets"],
        depth=k + 1,
        failure_budget=params["failure_budget"],
        n_ports=params["n_ports"],
        n_tags=params["n_tags"],
    )
    ts.extend_to(k + 1)
    assumptions = [ts.violation_prefix(invariant, k + 1)]
    if k > 0:
        assumptions.append(Not(ts.violation_prefix(invariant, k)))
        assumptions.extend(_simple_path_assumptions(ts, k))
    checks += 1
    if ts.check(assumptions) != UNSAT:
        return RecheckReport(False, checks, f"inductive step fails at k={k}")
    return RecheckReport(True, checks, f"k-induction certificate valid (k={k})")


def _recheck_ic3(
    net: VerificationNetwork, invariant, cert: ProofCertificate, params: dict
) -> RecheckReport:
    ts = TransitionSystem(
        net,
        n_packets=params["n_packets"],
        depth=1,
        failure_budget=params["failure_budget"],
        n_ports=params["n_ports"],
        n_tags=params["n_tags"],
    )
    for cube in cert.clauses:
        for key, _ in cube:
            if not ts.has_atom(key):
                return RecheckReport(
                    False, 0, f"certificate names unknown state {key!r}"
                )
    ts.extend_to(1)
    try:
        clauses0 = [clause_term(ts, cube, 0) for cube in cert.clauses]
        clauses1 = [clause_term(ts, cube, 1) for cube in cert.clauses]
    except ValueError as err:
        # The atom *keys* all exist, but a literal's value may still be
        # outside this encoding's enum domain (e.g. a certificate from
        # another network version naming an address its slice no longer
        # carries).  That is a failed validation, not an error.
        return RecheckReport(False, 0, f"certificate vocabulary mismatch: {err}")
    checks = 0
    # (1) Initiation: the empty start satisfies every clause.
    if clauses0:
        checks += 1
        if ts.check(ts.init_units() + [Not(And(*clauses0))]) != UNSAT:
            return RecheckReport(False, checks, "initiation fails")
    for clause in clauses0:
        ts.solver.add(clause)
    # (2) Consecution: Inv is closed under one transition.
    if clauses1:
        checks += 1
        if ts.check([Not(And(*clauses1))]) != UNSAT:
            return RecheckReport(False, checks, "consecution fails")
    # (3) Property: no violating event fires from an Inv state.
    checks += 1
    if ts.check([ts.violation_prefix(invariant, 1)]) != UNSAT:
        return RecheckReport(False, checks, "property implication fails")
    return RecheckReport(
        True, checks, f"ic3 certificate valid ({len(cert.clauses)} clauses)"
    )


@dataclass
class MinimizeReport:
    """Outcome of one greedy certificate shrink pass."""

    certificate: Optional[ProofCertificate] = field(repr=False, default=None)
    clauses_before: int = 0
    clauses_after: int = 0
    literals_before: int = 0
    literals_after: int = 0
    solver_checks: int = 0
    budget_exhausted: bool = False

    @property
    def shrink_ratio(self) -> float:
        """How many times smaller the clause set got (1.0 = no shrink)."""
        if self.clauses_after == 0:
            return float(self.clauses_before) if self.clauses_before else 1.0
        return self.clauses_before / self.clauses_after

    def to_json(self) -> dict:
        return {
            "clauses_before": self.clauses_before,
            "clauses_after": self.clauses_after,
            "literals_before": self.literals_before,
            "literals_after": self.literals_after,
            "shrink_ratio": round(self.shrink_ratio, 2),
            "solver_checks": self.solver_checks,
            "budget_exhausted": self.budget_exhausted,
        }


def minimize_certificate(
    net: VerificationNetwork,
    invariant,
    cert: ProofCertificate,
    params: dict,
    ts: Optional[TransitionSystem] = None,
    max_queries: Optional[int] = None,
    max_conflicts_per_query: int = 4000,
) -> MinimizeReport:
    """Greedy drop-a-clause shrink of an IC3 certificate.

    IC3 ships its whole inductive strengthening — every clause its
    frames converged with — but the fixpoint is usually far from
    minimal.  Dropping a clause keeps *initiation* valid for free (the
    invariant only gets weaker), so each candidate drop needs exactly
    the two remaining conditions re-established: **consecution**
    (``Inv ∧ T ⊨ Inv′``, which dropping can break because the
    antecedent weakens too) and **property implication**.  A drop whose
    two queries both come back UNSAT is kept; anything else — SAT,
    or an inconclusive budgeted query — keeps the clause.

    Clauses are attempted largest-first (big cubes block the least and
    are the likeliest dead weight).  ``max_queries`` bounds the pass;
    on exhaustion the shrink so far is returned with
    ``budget_exhausted`` set.  K-induction certificates have nothing to
    drop and return unchanged.

    ``ts`` reuses a live transition system over the *same* network and
    parameters (the portfolio hands in the one its provers ran on).
    Sound because everything engine-specific in that solver is guarded
    by activation/assumption literals the queries here never set, and
    shrink queries only ever *assume* — they assert nothing.

    The result is *not* self-certifying: callers re-validate the shrunk
    certificate with :func:`recheck_certificate` (cold solver) before
    caching or reporting it, exactly as for a fresh proof.
    """
    lits = sum(len(c) for c in cert.clauses)
    report = MinimizeReport(
        certificate=cert,
        clauses_before=len(cert.clauses),
        clauses_after=len(cert.clauses),
        literals_before=lits,
        literals_after=lits,
    )
    if cert.kind != IC3 or not cert.clauses:
        return report

    if ts is None:
        ts = TransitionSystem(
            net,
            n_packets=params["n_packets"],
            depth=1,
            failure_budget=params["failure_budget"],
            n_ports=params["n_ports"],
            n_tags=params["n_tags"],
        )
    ts.extend_to(1)
    violation = ts.violation_prefix(invariant, 1)

    kept = list(cert.clauses)
    # Largest cubes first; index tie-break keeps the pass deterministic.
    order = sorted(range(len(kept)), key=lambda i: (-len(kept[i]), i))
    dropped = set()

    def survives_without(skip: int) -> Optional[bool]:
        """Whether the certificate minus clause ``skip`` still proves
        the property (None = a query budget ran out: inconclusive)."""
        active = [
            c for i, c in enumerate(kept) if i != skip and i not in dropped
        ]
        now = [clause_term(ts, c, 0) for c in active]
        nxt = [clause_term(ts, c, 1) for c in active]
        if nxt:
            report.solver_checks += 1
            status = ts.check(
                now + [Not(And(*nxt))], max_conflicts=max_conflicts_per_query
            )
            if status != UNSAT:
                return None if status != SAT else False
        report.solver_checks += 1
        status = ts.check(
            now + [violation], max_conflicts=max_conflicts_per_query
        )
        if status != UNSAT:
            return None if status != SAT else False
        return True

    for i in order:
        if max_queries is not None and report.solver_checks >= max_queries:
            report.budget_exhausted = True
            break
        if survives_without(i):
            dropped.add(i)

    if dropped:
        clauses = tuple(c for i, c in enumerate(kept) if i not in dropped)
        report.certificate = ProofCertificate(kind=IC3, clauses=clauses)
        report.clauses_after = len(clauses)
        report.literals_after = sum(len(c) for c in clauses)
    return report


def recheck_certificate(
    net: VerificationNetwork, invariant, cert: ProofCertificate, params: dict
) -> RecheckReport:
    """Validate ``cert`` for ``invariant`` on ``net`` with cold solvers.

    ``params`` are the resolved BMC parameters (``n_packets``,
    ``failure_budget``, ``n_ports``, ``n_tags``) the proof ran with —
    the certificate is relative to that packet schema.  Returns a
    :class:`RecheckReport`; ``solver_checks`` is the number of solver
    queries spent, the quantity certificate *reuse* is measured by.
    """
    if params.get("failure_budget"):
        return RecheckReport(False, 0, "failure budgets have no unbounded proofs")
    try:
        if cert.kind == KINDUCTION:
            report = _recheck_kinduction(net, invariant, cert, params)
        elif cert.kind == IC3:
            report = _recheck_ic3(net, invariant, cert, params)
        else:
            return RecheckReport(False, 0, f"unknown certificate kind {cert.kind!r}")
    except KeyError as err:  # structural mismatch against the new network
        return RecheckReport(False, 0, f"certificate does not map: {err}")
    report.certificate = cert
    return report
