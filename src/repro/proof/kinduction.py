"""k-induction with simple-path strengthening.

The classic Sheeran–Singh–Stålmarck recipe, re-grounded on the event
encoding: the property "no violating event, ever" is ``k``-inductive
when

* **base**: no violating schedule of length ``≤ k`` exists from the
  real (empty) start — exactly the warm BMC driver's depth-``k``
  question, so the portfolio shares one :class:`IncrementalBMC`
  between bug hunting and base cases; and
* **step**: no schedule of ``k+1`` events from an *arbitrary
  consistent state* (see
  :meth:`repro.proof.transition.TransitionSystem.consistency_axioms`)
  keeps the property clean for ``k`` steps and violates it at step
  ``k``.

The step query is strengthened with **simple-path** constraints: the
``k+1`` states along the unrolling must be pairwise distinct.  State
atoms only ever accrete (history predicates are monotone in the
steady state), so a simple path cannot be longer than the atom count —
the iteration is complete, not just sound, given a large enough
``max_k``.  In practice small ``k`` already discharges the invariants
whose slices simply contain no delivery path, and IC3 covers the rest;
``max_k`` caps the quadratic growth of the distinctness constraints.

All queries run as *assumptions* on the shared warm transition system,
so walking ``k`` upward never re-encodes a prefix and learned clauses
carry over — the same incremental-SAT usage pattern the BMC driver
established.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..obs import get_registry
from ..smt import Not, Term, UNSAT, SAT
from .certificate import ProofCertificate
from .transition import TransitionSystem

__all__ = ["KInductionEngine"]


@dataclass
class EngineOutcome:
    """What one engine concluded (``status`` in holds/cex/stalled)."""

    status: str
    certificate: Optional[ProofCertificate] = None
    reason: str = ""


HOLDS = "holds"
CEX = "cex"
STALLED = "stalled"


class KInductionEngine:
    """Iterative k-induction over one warm transition system.

    ``base_clean`` reports the deepest depth the base case is known
    clean to (the portfolio wires it to its BMC engine's progress); a
    step-query success at ``k`` only concludes once the base has
    caught up, so the engine can be interleaved with the bug hunt.
    """

    name = "kinduction"

    def __init__(
        self,
        ts: TransitionSystem,
        invariant,
        max_k: Optional[int] = None,
        base_clean: Optional[Callable[[], int]] = None,
    ):
        self.ts = ts
        self.invariant = invariant
        ceiling = ts.model_depth - 1  # step k needs k+1 unrolled events
        self.max_k = ceiling if max_k is None else min(max_k, ceiling)
        self.base_clean = base_clean if base_clean is not None else (lambda: 0)
        self.k = 0
        self.pending_k: Optional[int] = None  # step passed, base not caught up
        self.outcome: Optional[EngineOutcome] = None
        self._distinct: Dict[tuple, Term] = {}

    # ------------------------------------------------------------------
    def _assumptions(self, k: int):
        ts = self.ts
        out = [ts.violation_prefix(self.invariant, k + 1)]
        if k > 0:
            out.append(Not(ts.violation_prefix(self.invariant, k)))
        for t1 in range(k + 1):
            for t2 in range(t1 + 1, k + 1):
                key = (t1, t2)
                if key not in self._distinct:
                    self._distinct[key] = ts.distinct_states(t1, t2)
                out.append(self._distinct[key])
        out.extend(ts.noop_assumptions(k + 1))
        return out

    def _conclude(self, k: int) -> EngineOutcome:
        self.outcome = EngineOutcome(
            status=HOLDS,
            certificate=ProofCertificate(kind="kinduction", k=k),
            reason=f"{k}-inductive (simple-path)",
        )
        return self.outcome

    # ------------------------------------------------------------------
    def step(self, max_conflicts: Optional[int] = None) -> Optional[EngineOutcome]:
        """Advance one induction depth (or settle a pending base case).

        Returns the final outcome once reached, else ``None`` (call
        again).  A ``max_conflicts`` budget may leave the current ``k``
        unresolved; the warm solver resumes it on the next call.
        """
        if self.outcome is not None:
            return self.outcome
        if self.pending_k is not None:
            # Step case proven; wait for the bug hunt to certify the base.
            if self.base_clean() >= self.pending_k:
                return self._conclude(self.pending_k)
            return None
        if self.k > self.max_k:
            self.outcome = EngineOutcome(
                status=STALLED, reason=f"not k-inductive for k<={self.max_k}"
            )
            return self.outcome
        k = self.k
        ts = self.ts
        ts.extend_to(k + 1)
        result = ts.check(self._assumptions(k), max_conflicts=max_conflicts)
        if result == UNSAT:
            if k == 0 or self.base_clean() >= k:
                return self._conclude(k)
            self.pending_k = k
            return None
        if result == SAT:
            self.k += 1  # counterexample-to-induction: deepen
            get_registry().counter(
                "repro_kinduction_deepenings_total",
                "k-induction counterexamples-to-induction (k increments)",
            ).inc()
        return None  # unknown: budget exhausted, retry this k warm
