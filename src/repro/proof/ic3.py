"""IC3/PDR over the incremental solver.

Bradley's IC3 (a.k.a. property-directed reachability), instantiated on
the free-initial-state transition system of
:mod:`repro.proof.transition`:

* **frames** ``F_1 ⊆ F_2 ⊆ …`` over-approximate the states reachable
  in at most ``i`` steps; each is a set of *blocked cubes* over the
  state vocabulary (history atoms plus rigid packet-field pins), stored
  at the highest frame where the blocking clause is known to hold;
* the **bad** predicate is the invariant's violating event fired from
  the frame's states (one transition of the shared warm unrolling,
  deeper steps pinned to noops);
* a **proof-obligation queue** drives blocking: a counterexample-to-
  induction state is extracted as a full-state cube, its predecessors
  are enumerated lowest-frame-first, and every successfully blocked
  cube is **generalized** by the solver's final-conflict unsat core
  (``analyzeFinal``): only the literals the UNSAT proof actually used
  survive, re-anchored by a positive history literal so the clause
  keeps excluding the empty initial state;
* **clause pushing** promotes clauses whose consecution holds one
  frame further after each round; when a frame empties, the clauses
  above it form an inductive invariant, returned as an
  :class:`repro.proof.certificate.ProofCertificate` for independent
  re-checking.

Every query is a pure assumption call on the shared warm solver: frame
clauses are asserted once, permanently, each guarded by its level's
activation literal, and a query "against F_i" assumes the selectors of
levels ``>= i`` plus the cube's negation and next-state image.  Nothing
is ever re-asserted, and learned clauses — selector-tagged or not —
persist for the whole run: the incremental-SAT usage pattern IC3 was
designed around.

A counterexample answer is *advisory* here: cubes pin the rigid packet
fields but not the oracle choices, so a trace through the abstraction
may not be schedulable; the portfolio driver confirms real violations
with the BMC engine, which is complete for bug finding.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import get_registry
from ..smt import SAT, UNSAT, BoolVar, Implies, Term
from .certificate import ProofCertificate
from .kinduction import CEX, HOLDS, STALLED, EngineOutcome
from .transition import Cube, TransitionSystem, clause_term, is_history_lit

__all__ = ["IC3Engine"]

_engine_ids = itertools.count()


class IC3Engine:
    """Property-directed reachability over one warm transition system."""

    name = "ic3"

    def __init__(
        self,
        ts: TransitionSystem,
        invariant,
        max_frames: Optional[int] = None,
    ):
        self.ts = ts
        self.invariant = invariant
        ts.extend_to(1)
        # frames[i] = cubes whose blocking clause is established for
        # F_1..F_i and stored here (frames[0] is the concrete Init).
        self.frames: List[List[Cube]] = [[], []]
        self.N = 1
        # A simple path cannot revisit a state (atoms only accrete), so
        # the atom count bounds the frames any proof can need.
        self.max_frames = (
            len(ts.atoms) + 2 if max_frames is None else max_frames
        )
        self.outcome: Optional[EngineOutcome] = None
        self._noops = ts.noop_assumptions(1)
        self._bad = ts.violation_prefix(invariant, 1)
        self._obligations: List[Tuple[int, int, Cube]] = []
        self._seq = itertools.count()
        # Frame clauses are asserted once, permanently, guarded by a
        # per-level activation literal (selector → clause); a query
        # "against F_i" just assumes the selectors of levels >= i.
        # This is the incremental-SAT shape IC3 is built around: no
        # clause is ever re-asserted, and learned clauses that resolve
        # through a frame clause carry its selector and keep working
        # for every later query that assumes it.
        self._ns = f"{ts.model.ns}:ic3:{next(_engine_ids)}"
        self._selectors: List[Term] = [BoolVar(f"{self._ns}:F0")]  # F0 unused
        self._init_units = ts.init_units()

    # ------------------------------------------------------------------
    # Query plumbing
    # ------------------------------------------------------------------
    def _clauses_at(self, level: int) -> List[Cube]:
        return [
            cube
            for j in range(level, len(self.frames))
            for cube in self.frames[j]
        ]

    def _selector(self, level: int) -> Term:
        while len(self._selectors) <= level:
            self._selectors.append(
                BoolVar(f"{self._ns}:F{len(self._selectors)}")
            )
        return self._selectors[level]

    def _store_clause(self, level: int, cube: Cube) -> None:
        """Record ``¬cube`` at ``level``: bookkeeping for certificates
        and propagation, plus the selector-guarded solver assertion.
        (A clause promoted upward is simply re-guarded by the higher
        selector; the stale lower-level copy is subsumed, never wrong.)
        """
        if cube not in self.frames[level]:
            self.frames[level].append(cube)
        self.ts.solver.add(
            Implies(self._selector(level), clause_term(self.ts, cube, 0))
        )

    def _query(
        self,
        level: int,
        extra: Sequence[Term],
        assumptions: Sequence[Term],
        max_conflicts: Optional[int],
    ):
        """SAT query against frame ``level`` (0 = the concrete Init).

        Returns ``(result, payload)``: the full-state cube of the model
        on ``sat``, the failed-assumption core on ``unsat``.
        """
        ts = self.ts
        if level == 0:
            context = list(self._init_units)
        else:
            context = [
                self._selector(j) for j in range(level, len(self.frames))
            ]
        result = ts.check(
            context + list(extra) + list(assumptions) + self._noops,
            max_conflicts=max_conflicts,
        )
        if result == SAT:
            return result, ts.state_cube(ts.solver.model())
        if result == UNSAT:
            return result, list(ts.solver.unsat_core())
        return result, None

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------
    @staticmethod
    def _touches_init(cube: Cube) -> bool:
        """True when no literal separates the cube from the empty
        initial state (rigid pins never do — Init allows any fields)."""
        return not any(is_history_lit(lit) for lit in cube)

    def _generalize(self, cube: Cube, core_terms: List[Term],
                    term_of: Dict[Term, object]) -> Cube:
        """Keep only the literals the UNSAT proof used, re-anchored so
        the clause still excludes the initial state."""
        in_core = set()
        for term in core_terms:
            lit = term_of.get(term)
            if lit is not None:
                in_core.add(lit)
        kept = tuple(lit for lit in cube if lit in in_core)
        if self._touches_init(kept):
            anchor = next(lit for lit in cube if is_history_lit(lit))
            kept = kept + (anchor,)
        return kept

    def _attempt_block(
        self, level: int, cube: Cube, max_conflicts: Optional[int]
    ) -> Optional[Cube]:
        """Re-run the consecution query for a candidate cube; on
        success return it, core-trimmed further.  ``None`` = not
        blockable (or budget ran out)."""
        ts = self.ts
        primed = [(lit, ts.lit_term(lit, 1)) for lit in cube]
        term_of = {term: lit for lit, term in primed}
        result, payload = self._query(
            level - 1,
            extra=[clause_term(ts, cube, 0)],
            assumptions=[term for _, term in primed],
            max_conflicts=max_conflicts,
        )
        if result != UNSAT:
            return None
        return self._generalize(cube, payload, term_of)

    def _shrink(
        self, level: int, cube: Cube, max_conflicts: Optional[int]
    ) -> Cube:
        """Drop rigid field pins the block does not actually need.

        Unsat cores alone tend to keep one incidental field value per
        cube, splintering a structural fact ("the firewall never
        forwarded packet 0") into one clause per port/tag combination.
        Each candidate drop is certified by its own consecution query,
        so this only ever widens a clause the solver has proven."""
        fields = [lit for lit in cube if lit[0][0] == "field"]
        if not fields:
            return cube
        # Cheapest first: most blocks are purely structural.
        bare = tuple(lit for lit in cube if lit[0][0] != "field")
        if bare and not self._touches_init(bare):
            widened = self._attempt_block(level, bare, max_conflicts)
            if widened is not None:
                return widened
        for lit in fields:
            if lit not in cube:
                continue  # an earlier drop's core already removed it
            candidate = tuple(other for other in cube if other != lit)
            widened = self._attempt_block(level, candidate, max_conflicts)
            if widened is not None:
                cube = widened
        return cube

    def _enqueue(self, level: int, cube: Cube) -> None:
        heapq.heappush(self._obligations, (level, next(self._seq), cube))

    def _process_obligation(self, max_conflicts: Optional[int]) -> bool:
        """Handle the lowest-frame obligation; False when the budget ran
        out (the obligation stays queued)."""
        level, seq, cube = self._obligations[0]
        if level == 0 or self._touches_init(cube):
            self.outcome = EngineOutcome(
                status=CEX,
                reason=f"abstract counterexample within {self.N} steps",
            )
            return True
        ts = self.ts
        primed = [(lit, ts.lit_term(lit, 1)) for lit in cube]
        term_of = {term: lit for lit, term in primed}
        result, payload = self._query(
            level - 1,
            extra=[clause_term(ts, cube, 0)],
            assumptions=[term for _, term in primed],
            max_conflicts=max_conflicts,
        )
        if result == UNSAT:
            heapq.heappop(self._obligations)
            blocked = self._generalize(cube, payload, term_of)
            blocked = self._shrink(level, blocked, max_conflicts)
            self._store_clause(level, blocked)
            if level < self.N:
                # Chase the cube at the next frame too: keeps the
                # frontier honest without waiting for a new bad state.
                self._enqueue(level + 1, cube)
            return True
        if result == SAT:
            self._enqueue(level - 1, payload)
            return True
        return False  # budget exhausted

    # ------------------------------------------------------------------
    # Propagation / convergence
    # ------------------------------------------------------------------
    def _propagate(self, max_conflicts: Optional[int]) -> bool:
        """One clause-pushing sweep; False when the budget ran out."""
        ts = self.ts
        for i in range(1, self.N):
            for cube in list(self.frames[i]):
                result, _ = self._query(
                    i,
                    extra=[],
                    assumptions=[ts.lit_term(lit, 1) for lit in cube],
                    max_conflicts=max_conflicts,
                )
                if result == UNSAT:
                    self.frames[i].remove(cube)
                    self._store_clause(i + 1, cube)
                    get_registry().counter(
                        "repro_ic3_clause_pushes_total",
                        "IC3 blocking clauses pushed to a higher frame",
                    ).inc()
                elif result != SAT:
                    return False
            if not self.frames[i]:
                invariant_clauses = tuple(self._clauses_at(i + 1))
                self.outcome = EngineOutcome(
                    status=HOLDS,
                    certificate=ProofCertificate(
                        kind="ic3", clauses=invariant_clauses
                    ),
                    reason=(
                        f"inductive invariant with "
                        f"{len(invariant_clauses)} clauses at frame {i + 1}"
                    ),
                )
                return True
        return True

    # ------------------------------------------------------------------
    def step(
        self,
        max_conflicts: Optional[int] = None,
        max_queries: int = 64,
    ) -> Optional[EngineOutcome]:
        """Advance the search by a bounded slice of work.

        Returns the final outcome once reached, else ``None``.  The
        slice ends after ``max_conflicts`` conflicts or ``max_queries``
        solver queries, whichever first — IC3 queries are often
        conflict-free, so the query cap is what keeps a turn short and
        the portfolio's round-robin responsive.  The engine parks
        mid-search and resumes warm on the next call.
        """
        if self.outcome is not None:
            return self.outcome
        spent_from = self.ts.counters()["conflicts"]
        queries_from = self.ts.checks

        def remaining() -> Optional[int]:
            if max_conflicts is None:
                return None
            return max(0, max_conflicts - (self.ts.counters()["conflicts"] - spent_from))

        def exhausted() -> bool:
            if self.ts.checks - queries_from >= max_queries:
                return True
            budget = remaining()
            return budget is not None and budget <= 0

        while self.outcome is None and not exhausted():
            if self._obligations:
                if not self._process_obligation(remaining()):
                    break
                continue
            result, payload = self._query(
                self.N, extra=[], assumptions=[self._bad],
                max_conflicts=remaining(),
            )
            if result == SAT:
                self._enqueue(self.N, payload)
            elif result == UNSAT:
                if not self._propagate(remaining()):
                    break
                if self.outcome is None:
                    self.N += 1
                    self.frames.append([])
                    registry = get_registry()
                    registry.counter(
                        "repro_ic3_frame_extensions_total",
                        "new IC3 frames opened",
                    ).inc()
                    registry.gauge(
                        "repro_ic3_frames", "current IC3 frame count"
                    ).set(self.N)
                    if self.N > self.max_frames:
                        self.outcome = EngineOutcome(
                            status=STALLED,
                            reason=f"no convergence within {self.max_frames} frames",
                        )
            else:
                break
        return self.outcome
