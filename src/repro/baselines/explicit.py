"""Explicit-state reachability baseline (finite-state model checking).

The paper's §6 contrasts VMN's SMT approach with finite-state model
checking; this module implements the latter for the failure-free
fragment of our semantics, and the test suite uses it to *differentially
test* the SMT encoding: both engines must agree on every verdict.

The key observation making this cheap: without failures, every history
predicate in the model is **monotone** — the set of packets a node has
received, the firewall's ``established`` set, the cache contents only
grow, and forwarding justifications never expire.  The set of derivable
facts therefore has a least fixpoint that is *schedule-independent*:

* ``sent(n, p)`` — node ``n`` has handed concrete packet ``p`` to Ω,
* ``delivered(n, p)`` — Ω has delivered ``p`` to ``n``,

computed by iterating host emission (with data-provenance), Ω's
transfer rules (with ingress justification) and concrete middlebox
semantics until nothing new derives.  An invariant violation exists in
*some* schedule iff the corresponding fact pattern is in the fixpoint.

Concrete middlebox semantics are implemented here independently of the
symbolic models (type-dispatched), precisely so the two
implementations check each other.  NATs and load balancers are not
supported: their behaviour quantifies over oracle functions (port
mappings, backend choices) rather than booleans.  Abstract packet
classes are explored as constant oracles (``oracle_true`` /
``oracle_false``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..mboxes import (
    IDPS,
    AclFirewall,
    ApplicationFirewall,
    ContentCache,
    Gateway,
    LearningFirewall,
    Proxy,
    Scrubber,
    WanOptimizer,
)
from ..netmodel.packets import REQUEST_TAG
from ..netmodel.system import VerificationNetwork

__all__ = ["ConcretePacket", "FixpointChecker"]


@dataclass(frozen=True)
class ConcretePacket:
    src: str
    dst: str
    sport: int
    dport: int
    origin: str
    tag: str

    @property
    def is_request(self) -> bool:
        return self.tag == REQUEST_TAG

    def same_flow(self, other: "ConcretePacket") -> bool:
        forward = (self.src, self.dst, self.sport, self.dport) == (
            other.src, other.dst, other.sport, other.dport
        )
        reverse = (self.src, self.dst, self.sport, self.dport) == (
            other.dst, other.src, other.dport, other.sport
        )
        return forward or reverse


class FixpointChecker:
    """Schedule-independent reachability over concrete packets."""

    def __init__(
        self,
        net: VerificationNetwork,
        n_ports: int = 2,
        n_data_tags: int = 1,
        oracle_value: bool = False,
        max_iterations: int = 100,
    ):
        self.net = net
        self.oracle_value = oracle_value
        self.max_iterations = max_iterations
        for m in net.middleboxes:
            self._check_supported(m)
        addresses = list(net.addresses)
        ports = list(range(n_ports))
        tags = [REQUEST_TAG] + [f"data{i}" for i in range(n_data_tags)]
        self.universe: List[ConcretePacket] = [
            ConcretePacket(*fields)
            for fields in product(addresses, addresses, ports, ports, addresses, tags)
        ]

    @staticmethod
    def _check_supported(model) -> None:
        supported = (
            AclFirewall,
            LearningFirewall,
            ContentCache,
            Gateway,
            IDPS,
            Scrubber,
            ApplicationFirewall,
            WanOptimizer,
            Proxy,
        )
        if not isinstance(model, supported):
            raise NotImplementedError(
                f"explicit baseline has no concrete semantics for "
                f"{type(model).__name__}"
            )

    # ------------------------------------------------------------------
    # Fixpoint computation
    # ------------------------------------------------------------------
    def reachable(
        self,
        mute_hosts: Iterable[str] = (),
        forbid_sends: Iterable[Tuple[str, ConcretePacket]] = (),
    ) -> Tuple[Set[Tuple[str, ConcretePacket]], Set[Tuple[str, ConcretePacket]]]:
        """The least fixpoint of (sent, delivered) facts.

        ``mute_hosts`` never emit (used for flow isolation: a violation
        must not rely on the victim's own sends); ``forbid_sends``
        removes specific (node, packet) emissions (used for traversal:
        can the packet arrive while the middlebox never forwards it?).
        """
        mute = set(mute_hosts)
        forbidden = set(forbid_sends)
        sent: Set[Tuple[str, ConcretePacket]] = set()
        delivered: Set[Tuple[str, ConcretePacket]] = set()

        for _ in range(self.max_iterations):
            new_facts = False
            new_facts |= self._host_emissions(sent, delivered, mute, forbidden)
            new_facts |= self._omega_deliveries(sent, delivered)
            new_facts |= self._mbox_emissions(sent, delivered, forbidden)
            if not new_facts:
                return sent, delivered
        raise RuntimeError("fixpoint did not converge")  # pragma: no cover

    def _host_emissions(self, sent, delivered, mute, forbidden) -> bool:
        changed = False
        for h in self.net.hosts:
            if h in mute:
                continue
            received_origins = {
                p.origin
                for node, p in delivered
                if node == h and not p.is_request
            }
            for p in self.universe:
                if p.src != h and not self.net.allow_spoofing:
                    continue
                if not p.is_request and p.origin != h and p.origin not in received_origins:
                    continue  # data provenance
                fact = (h, p)
                if fact in sent or fact in forbidden:
                    continue
                sent.add(fact)
                changed = True
        return changed

    def _omega_deliveries(self, sent, delivered) -> bool:
        changed = False
        senders_of: Dict[ConcretePacket, Set[str]] = {}
        for node, p in sent:
            senders_of.setdefault(p, set()).add(node)
        for p, senders in senders_of.items():
            fields = {
                "src": p.src, "dst": p.dst, "sport": p.sport,
                "dport": p.dport, "origin": p.origin,
            }
            for rule in self.net.rules:
                if not rule.match.matches_concrete(fields):
                    continue
                if rule.from_nodes is not None and not (senders & rule.from_nodes):
                    continue
                fact = (rule.to, p)
                if fact not in delivered:
                    delivered.add(fact)
                    changed = True
        return changed

    def _mbox_emissions(self, sent, delivered, forbidden) -> bool:
        changed = False
        for m in self.net.middleboxes:
            inbox = [p for node, p in delivered if node == m.name]
            for p_in in inbox:
                for p_out, target in self._concrete_outputs(m, p_in, delivered):
                    fact = (m.name, p_out)
                    if fact in forbidden:
                        continue
                    if target is None:  # via Ω
                        if fact not in sent:
                            sent.add(fact)
                            changed = True
                    else:  # direct link (IDS tunnel)
                        dfact = (target, p_out)
                        if dfact not in delivered:
                            delivered.add(dfact)
                            changed = True
        return changed

    # ------------------------------------------------------------------
    # Concrete middlebox semantics (independent of the symbolic models)
    # ------------------------------------------------------------------
    def _concrete_outputs(
        self, m, p: ConcretePacket, delivered
    ) -> List[Tuple[ConcretePacket, Optional[str]]]:
        """(output packet, direct-link target or None) pairs."""
        if isinstance(m, Gateway):
            return [(p, None)]

        if isinstance(m, WanOptimizer):
            tags = {q.tag for q in self.universe if q.is_request == p.is_request}
            return [
                (ConcretePacket(p.src, p.dst, p.sport, p.dport, p.origin, t), None)
                for t in tags
            ]

        if isinstance(m, AclFirewall):
            return [(p, None)] if (p.src, p.dst) in m.acl else []

        if isinstance(m, LearningFirewall):
            permitted = self._fw_permits(m, p)
            if permitted:
                return [(p, None)]
            established = any(
                q.same_flow(p) and self._fw_permits(m, q)
                for node, q in delivered
                if node == m.name
            )
            return [(p, None)] if established else []

        if isinstance(m, (IDPS, Scrubber)):
            # The abstract class is a constant oracle in this baseline.
            return [] if self.oracle_value else [(p, None)]

        if isinstance(m, ApplicationFirewall):
            blocked = self.oracle_value and bool(m.blocked_classes)
            return [] if blocked else [(p, None)]

        if isinstance(m, ContentCache):
            return self._cache_outputs(m, p, delivered)

        if isinstance(m, Proxy):
            return self._proxy_outputs(m, p, delivered)

        raise NotImplementedError(type(m).__name__)  # pragma: no cover

    @staticmethod
    def _fw_permits(m: LearningFirewall, p: ConcretePacket) -> bool:
        if m.default_allow:
            return (p.src, p.dst) not in m.deny
        return (p.src, p.dst) in m.allow

    def _cache_outputs(self, m: ContentCache, p, delivered):
        out = []
        if p.is_request and p.dst == m.name:
            cached = any(
                node == m.name and not q.is_request and q.origin == p.origin
                for node, q in delivered
            )
            allowed = (p.src, p.origin) not in m.deny
            if cached and allowed:
                # The symbolic serve relation leaves the data tag free;
                # enumerate every data tag here to match.
                data_tags = {q.tag for q in self.universe if not q.is_request}
                for tag in data_tags:
                    served = ConcretePacket(
                        src=m.name, dst=p.src, sport=p.dport, dport=p.sport,
                        origin=p.origin, tag=tag,
                    )
                    out.append((served, None))
            else:
                fetch = ConcretePacket(
                    src=m.name, dst=p.origin, sport=p.sport, dport=p.dport,
                    origin=p.origin, tag=REQUEST_TAG,
                )
                out.append((fetch, None))
        return out

    def _proxy_outputs(self, m: Proxy, p, delivered):
        out = []
        if p.is_request and p.dst == m.name:
            out.append(
                (
                    ConcretePacket(
                        src=m.name, dst=p.origin, sport=p.sport, dport=p.dport,
                        origin=p.origin, tag=REQUEST_TAG,
                    ),
                    None,
                )
            )
        elif not p.is_request and p.dst == m.name:
            for node, q in delivered:
                if node == m.name and q.is_request and q.dst == m.name \
                        and q.origin == p.origin:
                    # The symbolic relay relation leaves sport free.
                    sports = {r.sport for r in self.universe}
                    for sport in sports:
                        out.append(
                            (
                                ConcretePacket(
                                    src=m.name, dst=q.src, sport=sport,
                                    dport=q.sport, origin=p.origin, tag=p.tag,
                                ),
                                None,
                            )
                        )
        return out

    # ------------------------------------------------------------------
    # Invariant queries (mirroring repro.core.invariants)
    # ------------------------------------------------------------------
    def node_isolation_violated(self, dst: str, src: str) -> bool:
        _, delivered = self.reachable()
        return any(n == dst and p.src == src for n, p in delivered)

    def can_reach(self, dst: str, src: str) -> bool:
        return self.node_isolation_violated(dst, src)

    def flow_isolation_violated(self, dst: str, src: str) -> bool:
        """A packet from ``src`` reaches ``dst`` on a flow ``dst`` never
        opened — schedules where ``dst`` stays silent cover exactly the
        violating cases (monotonicity)."""
        _, delivered = self.reachable(mute_hosts=[dst])
        return any(n == dst and p.src == src for n, p in delivered)

    def traversal_violated(self, dst: str, through: str,
                           from_sources: Optional[Iterable[str]] = None) -> bool:
        sources = None if from_sources is None else set(from_sources)
        for p in self.universe:
            if sources is not None and p.src not in sources:
                continue
            forbidden = [(through, p)]
            _, delivered = self.reachable(forbid_sends=forbidden)
            if (dst, p) in delivered:
                return True
        return False

    def data_isolation_violated(self, dst: str, origin: str) -> bool:
        sent, delivered = self.reachable()
        emitters = {origin} | {
            m.name
            for m in self.net.middleboxes
            if m.origin_agnostic or not m.flow_parallel
        }
        for n, p in delivered:
            if n != dst or p.origin != origin or p.is_request:
                continue
            if any((e, p) in sent for e in emitters):
                return True
        return False
