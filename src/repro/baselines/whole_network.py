"""Whole-network verification baseline.

This is the comparison series of the paper's Figures 7, 8 and 9: the
same SMT encoding, but run on the entire network instead of a slice and
checking every invariant instead of one per symmetry group.  The
machinery already lives in :class:`repro.core.VMN` behind flags; this
module packages it so benchmarks and examples read explicitly.
"""

from __future__ import annotations

from typing import Optional

from ..core.invariants import Invariant
from ..core.vmn import VMN
from ..netmodel.bmc import CheckResult, check
from ..network.failures import NO_FAILURE, FailureScenario
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy

__all__ = ["whole_network_vmn", "verify_whole_network"]


def whole_network_vmn(
    topology: Topology,
    steering: Optional[SteeringPolicy] = None,
    scenario: FailureScenario = NO_FAILURE,
) -> VMN:
    """A VMN instance with both scaling optimizations disabled."""
    return VMN(
        topology,
        steering,
        scenario=scenario,
        use_slicing=False,
        use_symmetry=False,
    )


def verify_whole_network(
    topology: Topology,
    invariant: Invariant,
    steering: Optional[SteeringPolicy] = None,
    scenario: FailureScenario = NO_FAILURE,
    **bmc_kwargs,
) -> CheckResult:
    """One invariant against the full, unsliced network model."""
    vmn = whole_network_vmn(topology, steering, scenario)
    return check(vmn.whole_network(), invariant, **bmc_kwargs)
