"""Baselines: whole-network verification and explicit-state checking."""

from .explicit import ConcretePacket, FixpointChecker
from .whole_network import verify_whole_network, whole_network_vmn

__all__ = [
    "ConcretePacket",
    "FixpointChecker",
    "verify_whole_network",
    "whole_network_vmn",
]
