"""Middlebox model library (paper §3.4).

Models are written in the guarded-command style of the paper's
Listings 1–2 (see :mod:`repro.mboxes.base`) and compiled to axioms by
the base class.  Each model declares the structural properties slicing
relies on: ``flow_parallel`` and ``origin_agnostic`` (paper §4.1).
"""

from .appfw import ApplicationFirewall
from .base import FAIL_CLOSED, FAIL_OPEN, Branch, MiddleboxModel, acl_pairs_term
from .cache import ContentCache
from .dnat import DNAT
from .firewall import AclFirewall, LearningFirewall
from .gateway import Gateway
from .idps import IDPS, RedirectingIDS
from .loadbalancer import LoadBalancer
from .nat import NAT
from .portfilter import PortFilterFirewall
from .proxy import Proxy
from .scrubber import Scrubber
from .vpn import VpnGateway
from .wanopt import WanOptimizer

__all__ = [
    "MiddleboxModel",
    "Branch",
    "FAIL_CLOSED",
    "FAIL_OPEN",
    "acl_pairs_term",
    "AclFirewall",
    "LearningFirewall",
    "NAT",
    "DNAT",
    "VpnGateway",
    "PortFilterFirewall",
    "LoadBalancer",
    "ContentCache",
    "IDPS",
    "RedirectingIDS",
    "Scrubber",
    "ApplicationFirewall",
    "WanOptimizer",
    "Proxy",
    "Gateway",
]
