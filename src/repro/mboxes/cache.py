"""Content-cache model (paper §5.2 data isolation).

The cache is the paper's canonical *origin-agnostic* middlebox: its
state (which origins' content it holds) is shared across flows, and its
behaviour does not depend on which host's request caused the fill —
that is exactly why data-isolation slices must contain a representative
host per policy class (§4.1).

Behaviour:

* a **data** packet (any non-request tag) fills the cache with content
  for ``origin(p)``;
* a **request** for origin ``o`` is answered from the cache when the
  content is held *and* no cache ACL entry denies ``(requester, o)``;
* a request that cannot be answered is forwarded towards the origin
  server (source-rewritten to the cache, so the answer returns here and
  fills the cache).

The ACL is a *deny list* of ``(requester address, origin address)``
pairs, mirroring the paper's §5.2 setup: the operator installs entries
denying cross-policy-group access to private data, and the experiments
inject misconfiguration by **deleting** entries — which silently widens
access, exactly the failure mode VMN is meant to catch.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..netmodel.system import ModelContext
from ..smt import And, Eq, Not, Or, Term
from .base import FAIL_CLOSED, Branch, MiddleboxModel, acl_pairs_term

__all__ = ["ContentCache"]


class ContentCache(MiddleboxModel):
    fail_mode = FAIL_CLOSED
    flow_parallel = False
    origin_agnostic = True

    def __init__(self, name: str, deny: Iterable[Tuple[str, str]] = ()):
        super().__init__(name)
        self.deny = frozenset(deny)

    # ------------------------------------------------------------------
    def cached(self, ctx: ModelContext, origin_term: Term, t: int) -> Term:
        """Content for ``origin_term`` is in the cache at step ``t``.

        History-defined and origin-agnostic: *any* data packet carrying
        that origin received since the last failure filled the cache,
        regardless of which flow or host it belonged to.
        """
        fills = [
            And(
                ctx.rcv_before(self.name, q.index, t, since_fail=True),
                Not(q.is_request),
                Eq(q.origin, origin_term),
            )
            for q in ctx.packets
        ]
        return Or(*fills)

    def serving_allowed(self, ctx: ModelContext, requester: Term,
                        origin_term: Term) -> Term:
        """No deny entry matches (requester, origin)."""
        return Not(acl_pairs_term(ctx, self.deny, requester, origin_term,
                                  owner=self.name, kind="deny"))

    # ------------------------------------------------------------------
    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        cache_addr = ctx.addr(self.name)

        # Serve a cache hit: answer goes back to the requester, carrying
        # the requested origin's data.
        serve_guard = And(
            p_in.is_request,
            Eq(p_in.dst, cache_addr),
            self.cached(ctx, p_in.origin, t),
            self.serving_allowed(ctx, p_in.src, p_in.origin),
        )
        serve_relation = And(
            Eq(p_out.dst, p_in.src),
            Eq(p_out.dport, p_in.sport),
            Eq(p_out.src, cache_addr),
            Eq(p_out.sport, p_in.dport),
            Eq(p_out.origin, p_in.origin),
            Not(p_out.is_request),
        )

        # Miss (or ACL-denied): fetch from the origin server on behalf
        # of the requester.
        fetch_guard = And(p_in.is_request, Eq(p_in.dst, cache_addr))
        fetch_relation = And(
            Eq(p_out.dst, p_in.origin),
            Eq(p_out.dport, p_in.dport),
            Eq(p_out.src, cache_addr),
            Eq(p_out.sport, p_in.sport),
            Eq(p_out.origin, p_in.origin),
            p_out.is_request,
        )

        return [
            Branch.forward(serve_guard, relation=serve_relation),
            Branch.forward(fetch_guard, relation=fetch_relation),
            # Data packets only fill the cache; they are not forwarded.
        ]

    def config_pairs(self):
        return [("deny", a, b) for a, b in sorted(self.deny)]

    def restricted(self, addresses):
        kept = {(a, b) for a, b in self.deny if a in addresses and b in addresses}
        return ContentCache(self.name, deny=kept)

    def edit_rules(self, add=(), remove=()):
        deny = (self.deny | frozenset(add)) - frozenset(remove)
        return ContentCache(self.name, deny=deny)
