"""Load-balancer model.

The balancer owns a virtual IP (its own name) and spreads flows across
a set of backends.  The choice of backend per flow is an uninterpreted
function — the solver explores every possible balancing decision, so a
verified invariant holds for *any* hashing/least-loaded policy, which
is how the paper abstracts policy-irrelevant mechanism.  State (the
flow-to-backend pinning) is per flow, so the balancer is flow-parallel.
"""

from __future__ import annotations

from typing import Iterable, List

from ..netmodel.packets import SymPacket
from ..netmodel.system import ModelContext
from ..smt import And, Eq, Ne, Or, Term
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["LoadBalancer"]


class LoadBalancer(MiddleboxModel):
    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, backends: Iterable[str]):
        super().__init__(name)
        self.backends = tuple(sorted(set(backends)))
        if not self.backends:
            raise ValueError("load balancer needs at least one backend")

    def _backend(self, ctx: ModelContext, p: SymPacket) -> Term:
        fn = ctx.oracle_fn(f"{self.name}.backend", ctx.schema.addr_sort)
        return fn(p.src, p.dst, p.sport, p.dport)

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        vip = ctx.addr(self.name)
        chosen = self._backend(ctx, p_in)
        rewrite = And(
            Eq(p_out.dst, chosen),
            Eq(p_out.src, p_in.src),
            Eq(p_out.sport, p_in.sport),
            Eq(p_out.dport, p_in.dport),
            Eq(p_out.origin, p_in.origin),
            Eq(p_out.tag, p_in.tag),
        )
        return [
            Branch.forward(Eq(p_in.dst, vip), relation=rewrite),
            # Return traffic and anything not addressed to the VIP is a
            # bump-in-the-wire pass-through.
            Branch.forward(Ne(p_in.dst, vip)),
        ]

    def linked_nodes(self):
        return self.backends

    def global_axioms(self, ctx: ModelContext) -> List[Term]:
        """The chosen backend is always one of the configured backends."""
        fn = ctx.oracle_fn(f"{self.name}.backend", ctx.schema.addr_sort)
        axioms: List[Term] = []
        for _, result in fn.applications.items():
            axioms.append(
                Or(*(Eq(result, ctx.addr(b)) for b in self.backends))
            )
        return axioms
