"""Gateway model (the GW box of the enterprise topology, paper Fig. 6).

A pure pass-through hop: it forwards everything unmodified.  It exists
so that topologies can name an explicit handoff point between the
firewalled edge and the internal subnets (and so the transfer rules can
require traffic to have traversed it), but it makes no forwarding
decisions of its own.  Fail-open, like the wire it effectively is.
"""

from __future__ import annotations

from typing import List

from ..smt import TRUE
from .base import FAIL_OPEN, Branch, MiddleboxModel

__all__ = ["Gateway"]


class Gateway(MiddleboxModel):
    fail_mode = FAIL_OPEN
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str):
        super().__init__(name)

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        return [Branch.forward(TRUE)]
