"""Application-level firewall (paper §2.2's Skype example).

Blocks traffic belonging to configured *application classes* — abstract
packet classes like ``skype?`` or ``jabber?`` decided by the
classification oracle.  The model demonstrates the paper's two-stage
middlebox description: the forwarding model is trivial (drop blocked
classes, forward the rest); everything interesting is delegated to the
oracle.

The paper's §3.6 notes that, absent extra constraints, VMN does not
know application classes are mutually exclusive and may report false
positives; passing ``mutually_exclusive=True`` adds the output
constraint (a packet belongs to at most one declared class), which the
ablation benchmark exercises.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List

from ..netmodel.system import ModelContext
from ..smt import Implies, Not, Or, Term
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["ApplicationFirewall"]


class ApplicationFirewall(MiddleboxModel):
    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(
        self,
        name: str,
        blocked_classes: Iterable[str],
        known_classes: Iterable[str] = (),
        mutually_exclusive: bool = False,
    ):
        super().__init__(name)
        self.blocked_classes = tuple(blocked_classes)
        # All classes this box can identify (superset of blocked).
        known = tuple(known_classes) or self.blocked_classes
        self.known_classes = tuple(dict.fromkeys(known + self.blocked_classes))
        self.mutually_exclusive = mutually_exclusive

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        blocked = Or(*(ctx.classify(c, p_in) for c in self.blocked_classes))
        return [
            Branch.drop(blocked),
            Branch.forward(Not(blocked)),
        ]

    def global_axioms(self, ctx: ModelContext) -> List[Term]:
        if not self.mutually_exclusive or len(self.known_classes) < 2:
            return []
        axioms: List[Term] = []
        for p in ctx.packets:
            for a, b in combinations(self.known_classes, 2):
                axioms.append(
                    Implies(ctx.classify(a, p), Not(ctx.classify(b, p)))
                )
        return axioms
