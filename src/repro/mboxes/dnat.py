"""Destination NAT (static port forwarding).

The complement of Listing 2's source NAT: a statically configured map
from public ports on the box's address to internal (address, port)
endpoints — how operators expose selected internal services.  Being a
static map, the box is stateless (trivially flow-parallel); the
interesting verification questions are which internal endpoints become
reachable from outside and whether replies leak the internal address
(they must not: the reverse direction rewrites the source back to the
public address).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..smt import And, Eq, Or
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["DNAT"]


class DNAT(MiddleboxModel):
    """Static destination NAT.

    ``forward`` maps a public port number to the internal
    ``(address, port)`` serving it; the box's own name is the public
    address.
    """

    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, forward: Mapping[int, Tuple[str, int]]):
        super().__init__(name)
        self.forward: Dict[int, Tuple[str, int]] = dict(forward)
        internals = [addr for addr, _ in self.forward.values()]
        if len(set(self.forward)) != len(self.forward):  # pragma: no cover
            raise ValueError("duplicate public ports")
        self.internal_addresses = frozenset(internals)

    # ------------------------------------------------------------------
    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        public = ctx.addr(self.name)

        # Inbound: dst == public address, dport has a mapping.
        inbound_cases = []
        for pp, (internal, ip) in sorted(self.forward.items()):
            inbound_cases.append(
                And(
                    Eq(p_in.dport, ctx.schema.port(pp)),
                    Eq(p_out.dst, ctx.addr(internal)),
                    Eq(p_out.dport, ctx.schema.port(ip)),
                )
            )
        inbound_guard = And(
            Eq(p_in.dst, public),
            Or(*(Eq(p_in.dport, ctx.schema.port(pp)) for pp in sorted(self.forward))),
        )
        inbound_relation = And(
            Eq(p_out.src, p_in.src),
            Eq(p_out.sport, p_in.sport),
            Eq(p_out.origin, p_in.origin),
            Eq(p_out.tag, p_in.tag),
            Or(*inbound_cases),
        )

        # Reverse: replies from a forwarded internal endpoint get the
        # public address and port restored.
        reverse_cases = []
        for pp, (internal, ip) in sorted(self.forward.items()):
            reverse_cases.append(
                And(
                    Eq(p_in.src, ctx.addr(internal)),
                    Eq(p_in.sport, ctx.schema.port(ip)),
                    Eq(p_out.sport, ctx.schema.port(pp)),
                )
            )
        reverse_guard = Or(
            *(
                And(Eq(p_in.src, ctx.addr(internal)), Eq(p_in.sport, ctx.schema.port(ip)))
                for internal, ip in self.forward.values()
            )
        )
        reverse_relation = And(
            Eq(p_out.src, public),
            Eq(p_out.dst, p_in.dst),
            Eq(p_out.dport, p_in.dport),
            Eq(p_out.origin, p_in.origin),
            Eq(p_out.tag, p_in.tag),
            Or(*reverse_cases),
        )

        return [
            Branch.forward(inbound_guard, relation=inbound_relation),
            Branch.forward(reverse_guard, relation=reverse_relation),
            # Unmapped traffic is dropped (the box owns its address).
        ]

    def linked_nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self.internal_addresses))

    def config_pairs(self):
        return [
            ("forward", self.name, internal)
            for internal, _ in sorted(self.forward.values())
        ]
