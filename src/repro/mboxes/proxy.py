"""Forward-proxy model.

The proxy terminates client requests and re-issues them from its own
address; responses from servers are relayed back to whichever client
asked for that content.  Its pending-request table is keyed by the
requested origin, shared across flows, and insensitive to which client
created an entry — making the proxy *origin-agnostic* (paper §4.1 notes
"most proxies are origin-agnostic").

Unlike :class:`repro.mboxes.cache.ContentCache` the proxy stores
nothing: every request goes to the origin server, so data-isolation
still hinges on the server-side firewalls, not on proxy ACLs.
"""

from __future__ import annotations

from typing import List

from ..smt import And, Eq, Not, Or
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["Proxy"]


class Proxy(MiddleboxModel):
    fail_mode = FAIL_CLOSED
    flow_parallel = False
    origin_agnostic = True

    def __init__(self, name: str):
        super().__init__(name)

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        proxy_addr = ctx.addr(self.name)

        # Client request addressed to the proxy: re-issue from our
        # address towards the origin server.
        reissue_guard = And(p_in.is_request, Eq(p_in.dst, proxy_addr))
        reissue_relation = And(
            Eq(p_out.dst, p_in.origin),
            Eq(p_out.dport, p_in.dport),
            Eq(p_out.src, proxy_addr),
            Eq(p_out.sport, p_in.sport),
            Eq(p_out.origin, p_in.origin),
            p_out.is_request,
        )

        # Server response: relay the data to a client with a pending
        # request for this origin (the pending table is origin-keyed).
        pending = [
            And(
                ctx.rcv_before(self.name, q.index, t, since_fail=True),
                q.is_request,
                Eq(q.dst, proxy_addr),
                Eq(q.origin, p_in.origin),
                Eq(p_out.dst, q.src),
                Eq(p_out.dport, q.sport),
            )
            for q in ctx.packets
        ]
        relay_guard = And(Not(p_in.is_request), Eq(p_in.dst, proxy_addr))
        relay_relation = And(
            Eq(p_out.src, proxy_addr),
            Eq(p_out.origin, p_in.origin),
            Eq(p_out.tag, p_in.tag),
            Or(*pending),
        )

        return [
            Branch.forward(reissue_guard, relation=reissue_relation),
            Branch.forward(relay_guard, relation=relay_relation),
        ]
