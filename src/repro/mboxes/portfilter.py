"""Port-granular stateless firewall.

The §5.1-style firewalls filter on address pairs; real rule sets are
port-granular ("only port 80 to the web tier").  This box permits
exactly the configured ``(src address, dst address, dst port)`` triples
— wildcards expressed by ``None`` — and drops the rest.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..netmodel.packets import SymPacket
from ..netmodel.system import ModelContext
from ..smt import And, Eq, Not, Or, Term
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["PortFilterFirewall"]

Rule = Tuple[Optional[str], Optional[str], Optional[int]]


class PortFilterFirewall(MiddleboxModel):
    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, allow: Iterable[Rule]):
        super().__init__(name)
        self.allow: Tuple[Rule, ...] = tuple(allow)

    def permits(self, ctx: ModelContext, p: SymPacket) -> Term:
        cases = []
        for src, dst, dport in self.allow:
            parts = []
            if src is not None:
                parts.append(Eq(p.src, ctx.addr(src)))
            if dst is not None:
                parts.append(Eq(p.dst, ctx.addr(dst)))
            if dport is not None:
                parts.append(Eq(p.dport, ctx.schema.port(dport)))
            cases.append(And(*parts))
        term = Or(*cases)
        guards = getattr(ctx, "rule_guards", None)
        if guards is not None:
            # Whitelist relaxation for blame probes: guard free ⇒ the
            # filter permits everything (see acl_pairs_term kind="allow").
            term = Or(term, Not(guards.policy_guard(self.name)))
        return term

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        return [Branch.forward(self.permits(ctx, p_in))]

    def config_pairs(self):
        return [
            ("allow", src or "*", dst or "*")
            for src, dst, _ in self.allow
        ]

    def restricted(self, addresses):
        kept = [
            (src, dst, dport)
            for src, dst, dport in self.allow
            if (src is None or src in addresses) and (dst is None or dst in addresses)
        ]
        return PortFilterFirewall(self.name, allow=kept)
