"""Site-to-site VPN gateway.

A pair of gateways connected by a tunnel (a direct link in the
topology): traffic addressed to the remote site is shipped over the
tunnel to the peer gateway, which releases it unmodified into its own
site.  The encryption itself is transparent at the reachability level —
what matters to the verifier is that the inter-site path exists *only*
through the tunnel, so isolation of the transit network from site
traffic (and vice versa) can be checked.

Fail-closed: a failed gateway severs the tunnel.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..netmodel.system import ModelContext
from ..smt import Eq, Not, Or, Term
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["VpnGateway"]


class VpnGateway(MiddleboxModel):
    """One endpoint of a site-to-site tunnel.

    ``peer`` is the remote gateway (there must be a direct topology
    link between the two); ``remote`` lists the addresses behind the
    peer.
    """

    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, peer: str, remote: Iterable[str]):
        super().__init__(name)
        self.peer = peer
        self.remote = frozenset(remote)

    def _to_remote(self, ctx: ModelContext, p) -> Term:
        return Or(*(Eq(p.dst, ctx.addr(a)) for a in sorted(self.remote)))

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        to_remote = self._to_remote(ctx, p_in)
        return [
            # Remote-bound traffic goes through the tunnel.
            Branch.forward(to_remote, next_hop=self.peer),
            # Everything else (tunnel arrivals for the local site,
            # local transit) continues through the normal network.
            Branch.forward(Not(to_remote)),
        ]

    def linked_nodes(self) -> Tuple[str, ...]:
        return (self.peer,)

    def config_pairs(self):
        return [("tunnel", self.name, a) for a in sorted(self.remote)]
