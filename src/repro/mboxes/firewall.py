"""Firewall models: stateless ACL firewall and the learning firewall.

:class:`LearningFirewall` is the paper's Listing 1 — the stateful
firewall whose ``established`` set implements outbound hole-punching:
once a packet permitted by the ACL has established a flow, *both*
directions of that flow pass.  The compiled axioms match the paper's:

* ``established(flow(p))`` holds iff a permitted packet of the flow was
  received since the firewall last failed, and
* the firewall only emits packets it received that are permitted by the
  ACL or belong to an established flow.

Both models are flow-parallel and fail closed (``@FailClosed``).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..netmodel.packets import SymPacket, same_flow
from ..netmodel.system import ModelContext
from ..smt import And, Not, Or, Term
from .base import FAIL_CLOSED, Branch, MiddleboxModel, acl_pairs_term

__all__ = ["AclFirewall", "LearningFirewall"]


class AclFirewall(MiddleboxModel):
    """Stateless firewall: forward exactly the ACL-permitted packets.

    ``acl`` is a set of permitted ``(source address, destination
    address)`` pairs; everything else is dropped.
    """

    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, acl: Iterable[Tuple[str, str]]):
        super().__init__(name)
        self.acl = frozenset(acl)

    def permits(self, ctx: ModelContext, p: SymPacket) -> Term:
        return acl_pairs_term(ctx, self.acl, p.src, p.dst,
                              owner=self.name, kind="allow")

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        return [Branch.forward(self.permits(ctx, p_in))]

    def config_pairs(self):
        return [("allow", a, b) for a, b in sorted(self.acl)]

    def restricted(self, addresses):
        kept = {(a, b) for a, b in self.acl if a in addresses and b in addresses}
        return AclFirewall(self.name, acl=kept)

    def edit_rules(self, add=(), remove=()):
        acl = (self.acl | frozenset(add)) - frozenset(remove)
        return AclFirewall(self.name, acl=acl)


class LearningFirewall(MiddleboxModel):
    """The paper's Listing 1: stateful firewall with hole punching.

    A packet is forwarded when its flow is established, or when the ACL
    permits it (which also establishes the flow).  Flow identity is
    bidirectional (the paper's ``flow(p)``), so a permitted outbound
    packet punches a hole for the reverse direction.

    Two configuration styles, matching how the paper's evaluation
    writes policies:

    * ``allow=...`` — whitelist of permitted ``(src, dst)`` pairs
      (Listing 1's ``acl``); everything else needs an established flow;
    * ``deny=...`` with ``default_allow=True`` — blacklist, as in the
      enterprise scenario's "rules denying access for each quarantined
      subnet" (§5.3.1); deleting deny rules is how the §5.1 experiments
      inject misconfiguration.
    """

    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(
        self,
        name: str,
        allow: Iterable[Tuple[str, str]] = (),
        deny: Iterable[Tuple[str, str]] = (),
        default_allow: bool = False,
    ):
        super().__init__(name)
        self.allow = frozenset(allow)
        self.deny = frozenset(deny)
        self.default_allow = default_allow
        if self.allow and self.deny:
            raise ValueError("configure either an allow list or a deny list")

    def permits(self, ctx: ModelContext, p: SymPacket) -> Term:
        if self.default_allow:
            return Not(acl_pairs_term(ctx, self.deny, p.src, p.dst,
                                      owner=self.name, kind="deny"))
        return acl_pairs_term(ctx, self.allow, p.src, p.dst,
                              owner=self.name, kind="allow")

    def established(self, ctx: ModelContext, p: SymPacket, t: int) -> Term:
        """``established.contains(flow(p))`` at step ``t``.

        History-defined, exactly as the paper's axiom: some packet of
        the same (bidirectional) flow, permitted by the ACL, was
        received since the last failure of this firewall.
        """
        witnesses = [
            And(
                ctx.rcv_before(self.name, q.index, t, since_fail=True),
                same_flow(q, p),
                self.permits(ctx, q),
            )
            for q in ctx.packets
        ]
        return Or(*witnesses)

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        return [
            Branch.forward(self.established(ctx, p_in, t)),
            Branch.forward(self.permits(ctx, p_in)),
        ]

    def config_pairs(self):
        kind = "deny" if self.default_allow else "allow"
        pairs = self.deny if self.default_allow else self.allow
        return [(kind, a, b) for a, b in sorted(pairs)]

    def restricted(self, addresses):
        def keep(pairs):
            return {
                (a, b) for a, b in pairs if a in addresses and b in addresses
            }
        return LearningFirewall(
            self.name,
            allow=keep(self.allow),
            deny=keep(self.deny),
            default_allow=self.default_allow,
        )

    def edit_rules(self, add=(), remove=()):
        """Edit whichever rule list is active: the deny list on a
        default-allow (blacklist) firewall, the allow list otherwise."""
        def edit(pairs):
            return (frozenset(pairs) | frozenset(add)) - frozenset(remove)
        if self.default_allow:
            return LearningFirewall(
                self.name, deny=edit(self.deny), default_allow=True
            )
        return LearningFirewall(self.name, allow=edit(self.allow))
