"""WAN optimizer / compression model (paper §3.4, §3.6).

A box that applies a "complex packet modification" — compression here,
but encryption behaves identically from the verifier's perspective.
Following the paper, such modifications are modelled as replacing the
payload with a *random value*: the output packet preserves addressing
but its tag is left unconstrained, so the solver may pick anything.
This is sufficient fidelity for reachability invariants (§3.4) and is
the documented source of potential false positives (§3.6) that the
limitation tests exercise.
"""

from __future__ import annotations

from typing import List

from ..smt import TRUE, And, Eq
from .base import FAIL_OPEN, Branch, MiddleboxModel

__all__ = ["WanOptimizer"]


class WanOptimizer(MiddleboxModel):
    fail_mode = FAIL_OPEN
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str):
        super().__init__(name)

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        # Addressing and provenance preserved; payload tag rewritten to
        # an arbitrary ("random") value — deliberately unconstrained.
        recompressed = And(
            Eq(p_out.src, p_in.src),
            Eq(p_out.dst, p_in.dst),
            Eq(p_out.sport, p_in.sport),
            Eq(p_out.dport, p_in.dport),
            Eq(p_out.origin, p_in.origin),
            # Requests stay requests; data stays data (the optimizer
            # does not turn content into a request for content).
            Eq(p_out.is_request, p_in.is_request),
        )
        return [Branch.forward(TRUE, relation=recompressed)]
