"""NAT model (paper §3.4, Listing 2).

Outbound packets from internal hosts get their source rewritten to the
NAT's public address and their source port to ``remapped_port(flow)`` —
an uninterpreted function chosen by the solver (the paper assigns ports
"at random by calling the remapped_port method"), constrained to be
injective across flows.  Inbound packets addressed to the NAT's public
address are delivered to the internal flow whose remapped port matches
the inbound destination port — and only when such a mapping exists
(hole punching: unsolicited inbound traffic is dropped), which in our
history-defined encoding means the NAT previously processed an outbound
packet of that flow since its last failure.

Like Listing 2's explicit ``when fail(this) => forward(Seq.empty)``,
the NAT is fail-closed: mappings are lost on failure.
"""

from __future__ import annotations

from typing import Iterable, List

from ..netmodel.packets import SymPacket
from ..netmodel.system import ModelContext
from ..smt import And, Eq, Implies, Or, Term
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["NAT"]


class NAT(MiddleboxModel):
    """Source NAT for a set of internal addresses.

    The NAT's own name is its public address (``nat_address`` in the
    paper's listing).
    """

    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, internal: Iterable[str]):
        super().__init__(name)
        self.internal = frozenset(internal)

    # ------------------------------------------------------------------
    def _remap(self, ctx: ModelContext, p: SymPacket) -> Term:
        """``remapped_port(flow(p))`` for an outbound packet ``p``."""
        fn = ctx.oracle_fn(f"{self.name}.remapped_port", ctx.schema.port_sort)
        return fn(p.src, p.dst, p.sport, p.dport)

    def _is_internal(self, ctx: ModelContext, addr_term: Term) -> Term:
        return Or(*(Eq(addr_term, ctx.addr(a)) for a in sorted(self.internal)))

    # ------------------------------------------------------------------
    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        nat_addr = ctx.addr(self.name)

        # Inbound: dst(p) == nat_address -> restore (dst, dst_port) from
        # the reverse mapping, if an active mapping exists.
        restore_cases = []
        for q in ctx.packets:
            mapping_active = And(
                ctx.rcv_before(self.name, q.index, t, since_fail=True),
                self._is_internal(ctx, q.src),
                Eq(self._remap(ctx, q), p_in.dport),
                # Port-restricted cone: only the exact endpoint the
                # internal flow contacted may answer, from that port.
                Eq(q.dst, p_in.src),
                Eq(q.dport, p_in.sport),
            )
            restore_cases.append(
                And(
                    mapping_active,
                    Eq(p_out.dst, q.src),
                    Eq(p_out.dport, q.sport),
                )
            )
        inbound_relation = And(
            Eq(p_out.src, p_in.src),
            Eq(p_out.sport, p_in.sport),
            Eq(p_out.origin, p_in.origin),
            Eq(p_out.tag, p_in.tag),
            Or(*restore_cases),
        )

        # Outbound: internal source -> rewrite src to the public address
        # and sport to remapped_port(flow).
        outbound_relation = And(
            Eq(p_out.src, nat_addr),
            Eq(p_out.sport, self._remap(ctx, p_in)),
            Eq(p_out.dst, p_in.dst),
            Eq(p_out.dport, p_in.dport),
            Eq(p_out.origin, p_in.origin),
            Eq(p_out.tag, p_in.tag),
        )

        return [
            Branch.forward(Eq(p_in.dst, nat_addr), relation=inbound_relation),
            Branch.forward(self._is_internal(ctx, p_in.src), relation=outbound_relation),
            # Anything else (external traffic not addressed to us): drop.
        ]

    def global_axioms(self, ctx: ModelContext) -> List[Term]:
        """Port-mapping injectivity: distinct flows get distinct ports."""
        fn = ctx.oracle_fn(f"{self.name}.remapped_port", ctx.schema.port_sort)
        apps = list(fn.applications.items())
        axioms: List[Term] = []
        for i, (args_a, res_a) in enumerate(apps):
            for args_b, res_b in apps[i + 1 :]:
                same_key = And(*(Eq(x, y) for x, y in zip(args_a, args_b)))
                axioms.append(Implies(Eq(res_a, res_b), same_key))
        return axioms
