"""The middlebox modelling language (paper §3.4, Listings 1–2).

The paper specifies middleboxes in a loop-free, event-driven guarded-
command language: a model is an ordered list of ``when guard =>
action`` branches evaluated first-match against each received packet,
plus a failure mode (``@FailClosed`` / ``@FailOpen``).  VMN compiles
such models into quantified axioms.

Here a model subclasses :class:`MiddleboxModel` and implements
:meth:`branches`, returning :class:`Branch` objects for a symbolic
(input packet, output packet) pair.  The base class supplies the
semantic glue the paper's compilation performs:

* an emission by middlebox ``m`` of packet ``p_out`` at step ``t``
  requires an input packet ``p_in`` that ``m`` received earlier, with
  no failure of ``m`` in between (state is lost on failure, buffered
  packets are not replayed) — this is the ``send(f, p) => ◇ rcv(f, p)``
  axiom of the paper;
* the first branch whose guard matches ``p_in`` decides the action:
  ``forward`` with a field relation linking ``p_out`` to ``p_in``
  (identity by default), or ``drop`` (no emission);
* fail-closed boxes never emit while failed; fail-open boxes behave
  like a wire while failed (any received packet may be forwarded
  unmodified).

Branches may name a ``next_hop`` to emit directly to another node
(e.g. an IDS redirecting flagged traffic into a scrubbing box over a
tunnel); by default emissions go to the network pseudo-node Ω and are
routed by the transfer rules.

Every model also declares the two structural properties slicing needs
(paper §4.1): ``flow_parallel`` (state partitioned by flow) and
``origin_agnostic`` (shared state, insensitive to which host created
it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..netmodel.events import EventVars
from ..netmodel.packets import SymPacket
from ..netmodel.system import OMEGA, ModelContext
from ..smt import And, Eq, Implies, Not, Or, Term

__all__ = ["FAIL_CLOSED", "FAIL_OPEN", "Branch", "MiddleboxModel", "acl_pairs_term"]

FAIL_CLOSED = "closed"
FAIL_OPEN = "open"

FORWARD = "forward"
DROP = "drop"


@dataclass
class Branch:
    """One ``when guard => action`` arm of a middlebox model."""

    guard: Term
    action: str = FORWARD
    relation: Optional[Term] = None  # p_out <-> p_in field relation; None = identity
    next_hop: Optional[str] = None  # direct link target; None = via Ω

    @staticmethod
    def forward(guard: Term, relation: Optional[Term] = None,
                next_hop: Optional[str] = None) -> "Branch":
        return Branch(guard=guard, action=FORWARD, relation=relation, next_hop=next_hop)

    @staticmethod
    def drop(guard: Term) -> "Branch":
        return Branch(guard=guard, action=DROP)


def acl_pairs_term(ctx: ModelContext, pairs: Sequence[Tuple[str, str]],
                   src: Term, dst: Term,
                   owner: Optional[str] = None,
                   kind: str = "deny") -> Term:
    """The ACL membership test ``(src, dst) in pairs`` as a term.

    When the context carries blame-probe guards
    (:class:`repro.netmodel.system.RuleGuards`) and ``owner`` names the
    box, the term is guard-conditioned so the unsat-core probe can
    relax protections one unit at a time:

    * ``kind="deny"`` — each pair's hit is conjoined with its rule
      guard (guard free ⇒ the pair is effectively deleted, widening
      what the deny list lets through);
    * ``kind="allow"`` — the whole whitelist is disjoined with the
      negated policy guard (guard free ⇒ the box permits everything).

    Both directions *weaken* protection, which is the only way a holds
    verdict can be endangered — assuming every guard true restores the
    original semantics exactly.
    """
    guards = getattr(ctx, "rule_guards", None)
    hits = []
    for a, b in sorted(pairs):
        hit = And(Eq(src, ctx.addr(a)), Eq(dst, ctx.addr(b)))
        if guards is not None and owner is not None and kind == "deny":
            hit = And(guards.rule_guard(owner, kind, a, b), hit)
        hits.append(hit)
    term = Or(*hits)
    if guards is not None and owner is not None and kind == "allow":
        term = Or(term, Not(guards.policy_guard(owner)))
    return term


class MiddleboxModel:
    """Base class: turns guarded-command branches into emission axioms."""

    #: Failure behaviour: FAIL_CLOSED drops everything while failed,
    #: FAIL_OPEN forwards everything unmodified while failed.
    fail_mode = FAIL_CLOSED
    #: State is partitioned per flow and only that flow touches it.
    flow_parallel = True
    #: State is shared across flows but insensitive to who created it.
    origin_agnostic = False

    def __init__(self, name: str):
        self.name = name

    # ------------------------------------------------------------------
    # Subclass API
    # ------------------------------------------------------------------
    def branches(self, ctx: ModelContext, p_in: SymPacket, p_out: SymPacket,
                 t: int) -> List[Branch]:
        """The model's guarded commands for this (input, output) pair."""
        raise NotImplementedError

    def global_axioms(self, ctx: ModelContext) -> List[Term]:
        """Axioms independent of any particular timestep."""
        return []

    # ------------------------------------------------------------------
    # Slicing hooks (paper §4.1).  Slices restrict the address universe,
    # so models must say which addresses their configuration mentions,
    # which other nodes they are structurally tied to, and how to build
    # a copy whose configuration is restricted to a slice's addresses.
    # ------------------------------------------------------------------
    def config_pairs(self) -> List[Tuple[str, str, str]]:
        """(kind, src address, dst address) policy entries, for policy-
        equivalence-class computation and slicing.  Default: none."""
        return []

    def config_addresses(self) -> frozenset:
        out = set()
        for _, a, b in self.config_pairs():
            out.add(a)
            out.add(b)
        return frozenset(out)

    def linked_nodes(self) -> Tuple[str, ...]:
        """Nodes this box is structurally tied to (LB backends, an IDS's
        scrubber): a slice containing the box must contain these."""
        return ()

    def restricted(self, addresses: frozenset) -> "MiddleboxModel":
        """A copy whose configuration only mentions ``addresses``.

        Sound for flow-parallel/origin-agnostic models: packets inside a
        slice only carry slice addresses, so dropped entries could never
        match.  Default: the model has no address-bearing config."""
        return self

    def edit_rules(self, add=(), remove=()) -> "MiddleboxModel":
        """A copy with ``(src, dst)`` policy entries added/removed from
        the model's active rule list — the hook
        :class:`repro.incremental.EditPolicyRules` deltas apply.  Models
        without an address-pair rule list don't implement it."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support policy-rule edits"
        )

    # ------------------------------------------------------------------
    # Compilation (the paper's model-to-axioms translation)
    # ------------------------------------------------------------------
    def emission_axiom(self, ctx: ModelContext, ev: EventVars) -> Term:
        """Constraint that must hold whenever this box is the sender."""
        t = ev.t
        per_out: List[Term] = []
        for p_out in ctx.packets:
            justifications: List[Term] = []
            for p_in in ctx.packets:
                received = ctx.rcv_before(self.name, p_in.index, t, since_fail=True)
                fire_terms: List[Term] = []
                prior_guards: List[Term] = []
                for br in self.branches(ctx, p_in, p_out, t):
                    first_match = And(br.guard, *(Not(g) for g in prior_guards))
                    prior_guards.append(br.guard)
                    if br.action != FORWARD:
                        continue
                    relation = (
                        br.relation
                        if br.relation is not None
                        else p_out.fields_equal(p_in)
                    )
                    hop = br.next_hop if br.next_hop is not None else OMEGA
                    fire_terms.append(And(first_match, relation, ev.to_is(hop)))
                justifications.append(And(received, Or(*fire_terms)))
            per_out.append(Implies(ev.pkt_is(p_out.index), Or(*justifications)))
        behave = And(*per_out)

        failed = ctx.failed_at(self.name, t)
        if self.fail_mode == FAIL_CLOSED:
            return And(Not(failed), behave)
        # Fail-open: while failed the box is a wire (forward unmodified).
        passthrough_cases: List[Term] = []
        for p_out in ctx.packets:
            same = [
                And(
                    ctx.rcv_before(self.name, p_in.index, t),
                    p_out.fields_equal(p_in),
                )
                for p_in in ctx.packets
            ]
            passthrough_cases.append(
                Implies(ev.pkt_is(p_out.index), Or(*same))
            )
        passthrough = And(ev.to_is(OMEGA), *passthrough_cases)
        return Or(And(Not(failed), behave), And(failed, passthrough))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        kind = "flow-parallel" if self.flow_parallel else (
            "origin-agnostic" if self.origin_agnostic else "general"
        )
        return f"{type(self).__name__}({self.name}, {kind}, fail-{self.fail_mode})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
