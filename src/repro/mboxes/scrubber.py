"""Scrubbing-box model (paper §5.3.3).

The heavyweight analysis box that flagged traffic is tunnelled to: it
discards whatever it identifies as attack traffic (oracle class
``attack?``) and forwards the rest to the intended destination.  From
the verifier's perspective the interesting property is what the
scrubber does *not* guarantee: the surviving traffic has not passed the
stateful firewalls, so if the transfer rules deliver it directly to
subnets, flow- and node-isolation invariants break — the exact
misconfiguration the paper's ISP experiment injects.
"""

from __future__ import annotations

from typing import List

from ..smt import Not
from .base import FAIL_CLOSED, Branch, MiddleboxModel

__all__ = ["Scrubber"]


class Scrubber(MiddleboxModel):
    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, class_name: str = "attack"):
        super().__init__(name)
        self.class_name = class_name

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        attack = ctx.classify(self.class_name, p_in)
        return [
            Branch.drop(attack),
            Branch.forward(Not(attack)),
        ]
