"""Intrusion detection and prevention (IDPS) and IDS-redirect models.

:class:`IDPS` is the inline prevention box of the datacenter scenario
(paper Fig. 1): it drops packets the classification oracle marks
``malicious?`` and forwards the rest unmodified.  Whether a packet is
malicious is an abstract packet class — VMN verifies the configuration
for every possible classifier behaviour (paper §2.2).

:class:`RedirectingIDS` is the ISP scenario's lightweight monitor
(paper §5.3.3, Fig. 9a): when it decides a destination prefix is under
attack (oracle class ``suspicious?``), it reroutes the traffic over a
tunnel (a direct link) to a centralized scrubbing box instead of the
normal next hop; everything else continues through the normal pipeline.
The misconfiguration studied in the paper — the scrubbed path bypassing
the stateful firewalls — lives in the transfer rules, not in this
model.
"""

from __future__ import annotations

from typing import List

from ..smt import Not
from .base import FAIL_CLOSED, FAIL_OPEN, Branch, MiddleboxModel

__all__ = ["IDPS", "RedirectingIDS"]


class IDPS(MiddleboxModel):
    """Inline intrusion prevention: drop ``malicious?`` traffic."""

    fail_mode = FAIL_CLOSED
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, class_name: str = "malicious"):
        super().__init__(name)
        self.class_name = class_name

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        malicious = ctx.classify(self.class_name, p_in)
        return [
            Branch.drop(malicious),
            Branch.forward(Not(malicious)),
        ]


class RedirectingIDS(MiddleboxModel):
    """Lightweight IDS that tunnels flagged traffic to a scrubber.

    ``scrubber`` is the direct-link target for flagged packets; clean
    packets take the normal forwarding path through Ω.
    """

    fail_mode = FAIL_OPEN  # monitoring boxes are typically fail-open
    flow_parallel = True
    origin_agnostic = False

    def __init__(self, name: str, scrubber: str, class_name: str = "suspicious"):
        super().__init__(name)
        self.scrubber = scrubber
        self.class_name = class_name

    def branches(self, ctx, p_in, p_out, t) -> List[Branch]:
        flagged = ctx.classify(self.class_name, p_in)
        return [
            Branch.forward(flagged, next_hop=self.scrubber),
            Branch.forward(Not(flagged)),
        ]

    def linked_nodes(self):
        return (self.scrubber,)
