"""The metrics registry: typed counters, gauges, and histograms.

One :class:`MetricsRegistry` absorbs every work counter the stack used
to hand around as ad-hoc tuples — the solver's cumulative counters
(:data:`SOLVER_COUNTER_KEYS`, previously scattered as ``_COUNTER_KEYS``
copies in three modules), the incremental session's reuse counts, the
proof portfolio's round budgets, the repair loop's screening costs.

Three metric kinds, Prometheus-shaped so the registry can back the
future ``/metrics`` endpoint of ``repro serve`` unchanged:

* **Counter** — monotone totals (``.inc(n)``).  Adding work to the
  system means incrementing a counter, never replacing a tuple.
* **Gauge** — point-in-time values (``.set(v)``): database sizes, pool
  occupancy.
* **Histogram** — distributions (``.observe(v)``) over fixed buckets:
  per-candidate screening seconds, CEGIS round sizes.

Metrics take optional **labels** (``counter.inc(1, engine="ic3")``);
each label set is an independent series, exactly like Prometheus
children.  ``snapshot()`` / ``delta_since()`` give the cheap
delta-snapshot idiom the audit path uses for per-check attribution.

The module is dependency-free and must stay importable from the hot
layers (``repro.smt`` imports it), so it must never import other
``repro`` modules.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SOLVER_COUNTER_KEYS",
    "SOLVER_GAUGE_KEYS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "solver_counter_snapshot",
]

#: The solver's cumulative work counters — THE single definition.
#: ``repro.netmodel.bmc.SOLVER_COUNTERS`` re-exports this tuple, and
#: every layer that diffs solver snapshots (the BMC driver, the
#: transition system, the portfolio) keys off it, so adding a counter
#: to :meth:`repro.smt.sat.SatSolver.stats` means extending this tuple
#: — and the contract test in ``tests/obs/test_counter_contract.py``
#: fails loudly if the two ever drift (the PR-6 stale-tuple bug class).
SOLVER_COUNTER_KEYS = (
    "conflicts",
    "decisions",
    "propagations",
    "restarts",
    "learned",
    "subsumed",
    "strengthened",
)

#: Non-monotone solver statistics (current sizes, not totals); the
#: contract test uses this to classify every ``stats()`` key.
SOLVER_GAUGE_KEYS = ("vars", "clauses", "learnts", "scopes")


def solver_counter_snapshot(stats: dict) -> dict:
    """Project a solver ``stats()`` dict onto the canonical counter
    keys (missing keys read 0, so pickled pre-inprocessing solvers and
    the vendored reference solver still satisfy the schema)."""
    return {k: stats.get(k, 0) for k in SOLVER_COUNTER_KEYS}


_NO_LABELS: Tuple[Tuple[str, str], ...] = ()


def _label_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return _NO_LABELS
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: a named family of label series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def series(self) -> Iterable[Tuple[Tuple[Tuple[str, str], ...], object]]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotone total.  ``inc`` with optional labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, n: float = 1, **labels) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + n

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def series(self):
        return self._values.items()


class Gauge(_Metric):
    """A point-in-time value.  ``set``/``inc``/``dec`` with labels."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def set(self, v: float, **labels) -> None:
        self._values[_label_key(labels)] = v

    def inc(self, n: float = 1, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + n

    def dec(self, n: float = 1, **labels) -> None:
        self.inc(-n, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def series(self):
        return self._values.items()


#: Default histogram buckets: log-ish spread that covers both
#: sub-millisecond solver calls and multi-second proof searches.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class _HistogramSeries:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # cumulative per bucket at export
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """A distribution over fixed upper-bound buckets."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        self._series: Dict[Tuple[Tuple[str, str], ...], _HistogramSeries] = {}

    def observe(self, v: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        i = bisect_left(self.buckets, v)
        if i < len(self.buckets):
            series.counts[i] += 1
        series.total += v
        series.count += 1

    def series(self):
        return self._series.items()

    def _percentile(self, series: _HistogramSeries, q: float) -> float:
        """Prometheus-style estimate of the ``q``-quantile from the
        bucket counts: linear interpolation inside the bucket the
        target observation falls in; observations past the largest
        finite bucket clamp to that bound (the histogram records no
        maximum, so the bound is the honest answer)."""
        if series.count == 0:
            return 0.0
        target = q * series.count
        cumulative = 0.0
        lower = 0.0
        for bound, n in zip(self.buckets, series.counts):
            if n and cumulative + n >= target:
                frac = (target - cumulative) / n
                return lower + frac * (bound - lower)
            cumulative += n
            lower = bound
        return float(self.buckets[-1])

    def percentile(self, q: float, **labels) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) for one label set;
        0 when unobserved."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return 0.0
        return self._percentile(series, q)

    def summary(self, **labels) -> dict:
        """``{count, sum, p50, p95, p99}`` for one label set (0s when
        unobserved)."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0}
        return {
            "count": series.count,
            "sum": series.total,
            "p50": self._percentile(series, 0.50),
            "p95": self._percentile(series, 0.95),
            "p99": self._percentile(series, 0.99),
        }


def _fmt_value(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


def _fmt_labels(key: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class MetricsRegistry:
    """A named set of metrics with delta-snapshots and text export."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # Declaration (idempotent: re-declaring returns the same object).
    # ------------------------------------------------------------------
    def _declare(self, cls, name: str, help: str, **kw) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help, **kw)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already declared as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._declare(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._declare(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    # ------------------------------------------------------------------
    # Solver counter absorption
    # ------------------------------------------------------------------
    def record_solver(self, delta: dict, **labels) -> None:
        """Fold one check's solver-counter deltas into the registry
        (``repro_solver_<key>_total`` series)."""
        for key in SOLVER_COUNTER_KEYS:
            n = delta.get(key, 0)
            if n:
                self.counter(
                    f"repro_solver_{key}_total",
                    f"cumulative solver {key} across all checks",
                ).inc(n, **labels)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``{series_name: value}`` of every counter and gauge
        (histograms contribute their ``_count`` and ``_sum``)."""
        out: Dict[str, float] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                for key, series in metric.series():
                    suffix = _fmt_labels(key)
                    out[f"{metric.name}_count{suffix}"] = series.count
                    out[f"{metric.name}_sum{suffix}"] = series.total
                    for q, label in ((0.50, "p50"), (0.95, "p95"),
                                     (0.99, "p99")):
                        out[f"{metric.name}_{label}{suffix}"] = round(
                            metric._percentile(series, q), 6
                        )
            else:
                for key, value in metric.series():
                    out[f"{metric.name}{_fmt_labels(key)}"] = value
        return out

    def delta_since(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Per-interval attribution: current snapshot minus ``snapshot``,
        dropping zero rows (gauges report their current value when
        changed)."""
        now = self.snapshot()
        out: Dict[str, float] = {}
        for name, value in now.items():
            before = snapshot.get(name, 0)
            if value != before:
                out[name] = value - before
        return out

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------
    def dump(self) -> List[dict]:
        """A structured, picklable dump of every series — the shipping
        format worker processes return so :meth:`merge` can fold their
        work into the parent registry."""
        out: List[dict] = []
        for metric in self:
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {
                        "labels": dict(key),
                        "counts": list(s.counts),
                        "sum": s.total,
                        "count": s.count,
                    }
                    for key, s in metric.series()
                ]
            else:
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in metric.series()
                ]
            out.append(entry)
        return out

    def merge(self, dump: List[dict]) -> None:
        """Fold a :meth:`dump` from another registry (typically a worker
        process) into this one: counters and histogram series add,
        gauges take the incoming value."""
        for entry in dump:
            kind = entry.get("kind")
            if kind == "counter":
                counter = self.counter(entry["name"], entry.get("help", ""))
                for s in entry["series"]:
                    if s["value"]:
                        counter.inc(s["value"], **s["labels"])
            elif kind == "gauge":
                gauge = self.gauge(entry["name"], entry.get("help", ""))
                for s in entry["series"]:
                    gauge.set(s["value"], **s["labels"])
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"],
                    entry.get("help", ""),
                    buckets=tuple(entry["buckets"]),
                )
                for s in entry["series"]:
                    key = _label_key(s["labels"])
                    series = hist._series.get(key)
                    if series is None:
                        series = hist._series[key] = _HistogramSeries(
                            len(hist.buckets)
                        )
                    for i, n in enumerate(s["counts"][: len(series.counts)]):
                        series.counts[i] += n
                    series.total += s["sum"]
                    series.count += s["count"]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """The Prometheus text exposition of every metric — the payload
        a future ``repro serve`` ``/metrics`` endpoint returns."""
        lines: List[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, series in sorted(metric.series()):
                    cumulative = 0
                    for bound, n in zip(metric.buckets, series.counts):
                        cumulative += n
                        le = 'le="%s"' % bound
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_fmt_labels(key, le)} {cumulative}"
                        )
                    inf = 'le="+Inf"'
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(key, inf)} {series.count}"
                    )
                    lines.append(
                        f"{metric.name}_sum{_fmt_labels(key)} "
                        f"{_fmt_value(series.total)}"
                    )
                    lines.append(
                        f"{metric.name}_count{_fmt_labels(key)} {series.count}"
                    )
                    # Bucket-estimated percentiles, exported as plain
                    # series (`<name>_p95{...}`) so text-scraping
                    # consumers — `repro top`, shell one-liners — read
                    # latency quantiles without reconstructing them
                    # from the cumulative buckets.
                    for q, label in ((0.50, "p50"), (0.95, "p95"),
                                     (0.99, "p99")):
                        lines.append(
                            f"{metric.name}_{label}{_fmt_labels(key)} "
                            f"{_fmt_value(round(metric._percentile(series, q), 6))}"
                        )
            else:
                for key, value in sorted(metric.series()):
                    lines.append(
                        f"{metric.name}{_fmt_labels(key)} {_fmt_value(float(value))}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """Machine-readable dump for the run record."""
        return {
            "schema": "repro.metrics/1",
            "series": self.snapshot(),
        }


class _NullMetric:
    """Shared no-op handle for every metric kind: the disabled path
    allocates nothing and branches nowhere."""

    __slots__ = ()

    def inc(self, n=1, **labels):
        pass

    def dec(self, n=1, **labels):
        pass

    def set(self, v, **labels):
        pass

    def observe(self, v, **labels):
        pass

    def value(self, **labels):
        return 0

    def summary(self, **labels):
        return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def percentile(self, q, **labels):
        return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled registry: every declaration returns the shared
    no-op metric handle.  Installed by default; swapped for a real
    :class:`MetricsRegistry` when ``--metrics``/``--trace`` (or a
    test/benchmark harness) enables observability."""

    enabled = False

    def counter(self, name, help=""):
        return _NULL_METRIC

    def gauge(self, name, help=""):
        return _NULL_METRIC

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return _NULL_METRIC

    def get(self, name):
        return None

    def record_solver(self, delta, **labels):
        pass

    def snapshot(self):
        return {}

    def delta_since(self, snapshot):
        return {}

    def dump(self):
        return []

    def merge(self, dump):
        pass

    def to_prometheus(self):
        return ""

    def to_json(self):
        return {"schema": "repro.metrics/1", "series": {}}

    def __iter__(self):
        return iter(())


NULL_REGISTRY = NullRegistry()
