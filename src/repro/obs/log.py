"""Structured event logging: leveled JSONL with bound context fields.

The third leg of ``repro.obs`` next to spans and metrics.  A **span**
answers "where did the time go", a **metric** answers "how much work
happened", an **event** answers "what happened, when, with which
request" — the discrete facts an operator greps for after the fact
(a request was admitted, a shard was evicted, a certificate failed to
revalidate, a request stalled past its deadline).

One :class:`EventLogger` owns up to two sinks:

* a **file sink** — append-only JSONL with size-based rotation
  (:class:`JsonlSink`), the durable log a resident daemon writes next
  to its store;
* an **echo stream** — typically ``stderr``, with its own level
  threshold, so a foreground daemon shows traffic while ``--quiet``
  raises the threshold to warnings without touching the file log.

:meth:`EventLogger.bind` returns a child logger sharing the sinks with
extra fields merged into every record — the serve layer binds the
request id once and every event logged below it (admission, shard
routing, certificate reuse deep in the incremental session) carries it
automatically.

The **disabled** path is the usual ``repro.obs`` contract: every call
site logs unconditionally through :func:`repro.obs.get_logger`, so the
default :class:`NullLogger` singleton must cost a method call and
nothing else (no dict building, no level comparison on attributes it
does not have).

Like the rest of ``repro.obs`` this module is dependency-free and must
never import other ``repro`` modules.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from typing import IO, Optional

__all__ = [
    "LEVELS",
    "JsonlSink",
    "EventLogger",
    "NullLogger",
    "NULL_LOGGER",
]

#: Numeric severities, Python-logging-shaped so thresholds compare.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class JsonlSink:
    """Thread-safe append-only JSONL file with size-based rotation.

    When the file would exceed ``max_bytes`` the sink shifts
    ``path -> path.1 -> ... -> path.N`` (dropping the oldest) and
    starts fresh, so a long-running daemon's log footprint is bounded
    by ``(backups + 1) * max_bytes`` no matter how much traffic it
    serves.  Rotation is size-*triggered*, not size-exact: one record
    never splits across files.
    """

    def __init__(self, path: str, max_bytes: int = 4 << 20,
                 backups: int = 1):
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self.rotations = 0
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None
        self._size = 0

    def _open(self) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = self._fh.tell()

    def _rotate(self) -> None:
        self._fh.close()
        self._fh = None
        if self.backups == 0:
            os.remove(self.path)
        else:
            for i in range(self.backups, 0, -1):
                src = self.path if i == 1 else f"{self.path}.{i - 1}"
                dst = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, dst)
        self.rotations += 1
        self._open()

    def write_line(self, line: str) -> None:
        data = line + "\n"
        with self._lock:
            if self._fh is None:
                self._open()
            if (self.max_bytes
                    and self._size
                    and self._size + len(data) > self.max_bytes):
                self._rotate()
            self._fh.write(data)
            self._fh.flush()
            self._size += len(data)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class EventLogger:
    """Leveled JSONL logger with bound context fields.

    Records are flat JSON objects, one per line::

        {"ts": 1754650000.123456, "level": "info", "event": "access",
         "request_id": "r1a2b-000007", "method": "POST", ...}

    ``ts`` is wall-clock seconds (events are for correlating with the
    outside world; spans keep the monotonic clock).  Bound fields are
    merged first, call fields win on collision.
    """

    enabled = True

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[IO[str]] = None,
                 level: str = "info",
                 stream_level: Optional[str] = None,
                 max_bytes: int = 4 << 20,
                 backups: int = 1,
                 _sink: Optional[JsonlSink] = None,
                 _bound: Optional[dict] = None):
        self._sink = _sink if _sink is not None else (
            JsonlSink(path, max_bytes=max_bytes, backups=backups)
            if path else None
        )
        self._stream = stream
        self._level = LEVELS[level]
        self._stream_level = LEVELS[stream_level if stream_level else level]
        self._bound = dict(_bound or {})
        self._floor = min(
            self._level if self._sink is not None else LEVELS["error"] + 1,
            self._stream_level if stream is not None else LEVELS["error"] + 1,
        )

    # ------------------------------------------------------------------
    def bind(self, **fields) -> "EventLogger":
        """A child logger sharing this logger's sinks with ``fields``
        stamped onto every record it emits."""
        child = EventLogger.__new__(EventLogger)
        child._sink = self._sink
        child._stream = self._stream
        child._level = self._level
        child._stream_level = self._stream_level
        child._bound = {**self._bound, **fields}
        child._floor = self._floor
        return child

    @property
    def bound(self) -> dict:
        return dict(self._bound)

    # ------------------------------------------------------------------
    def event(self, level: str, event: str, **fields) -> Optional[dict]:
        """Emit one event record; returns it (or ``None`` when the
        level clears no sink)."""
        severity = LEVELS[level]
        if severity < self._floor:
            return None
        record = {"ts": round(time.time(), 6), "level": level, "event": event}
        if self._bound:
            record.update(self._bound)
        if fields:
            record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        if self._sink is not None and severity >= self._level:
            self._sink.write_line(line)
        if self._stream is not None and severity >= self._stream_level:
            try:
                self._stream.write(line + "\n")
            except (ValueError, OSError):  # closed stream — never fatal
                pass
        return record

    def debug(self, event: str, **fields):
        return self.event("debug", event, **fields)

    def info(self, event: str, **fields):
        return self.event("info", event, **fields)

    def warning(self, event: str, **fields):
        return self.event("warning", event, **fields)

    def error(self, event: str, **fields):
        return self.event("error", event, **fields)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()

    @classmethod
    def to_buffer(cls, level: str = "debug") -> "tuple[EventLogger, io.StringIO]":
        """A logger writing to an in-memory buffer — test plumbing."""
        buf = io.StringIO()
        return cls(stream=buf, level=level, stream_level=level), buf


class NullLogger:
    """The disabled logger: every call is a constant-time no-op and
    ``bind`` returns the same singleton, so unconditional call sites in
    hot layers cost one method call when logging is off."""

    enabled = False

    def bind(self, **fields) -> "NullLogger":
        return self

    @property
    def bound(self) -> dict:
        return {}

    def event(self, level, event, **fields):
        return None

    def debug(self, event, **fields):
        return None

    def info(self, event, **fields):
        return None

    def warning(self, event, **fields):
        return None

    def error(self, event, **fields):
        return None

    def close(self) -> None:
        return None


NULL_LOGGER = NullLogger()
