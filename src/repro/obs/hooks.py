"""Solver event hooks: the bridge from the CDCL cores to the tracer.

The SAT cores expose an optional ``events`` attribute (``None`` by
default — one predicate test on the restart path, nothing on the unit
path).  When observability is enabled, :class:`repro.smt.solver.Solver`
installs a :class:`SolverEventSink`, which turns solver-internal
moments into trace instants and registry counters:

* ``restart()`` — emitted by the pure-Python core at the actual restart
  moment (timeline-accurate instants);
* ``inprocessing(subsumed, strengthened)`` — after a budgeted
  inprocessing pass;
* ``ticks(...)`` — synthesized per-solve deltas for the C core, which
  cannot call back into Python mid-search.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["SolverEventSink"]


class SolverEventSink:
    """Receives solver-internal events; writes instants + counters."""

    __slots__ = ("tracer", "registry", "_restarts", "_inprocessing")

    def __init__(self, tracer: Tracer, registry: MetricsRegistry):
        self.tracer = tracer
        self.registry = registry
        self._restarts = registry.counter(
            "repro_solver_restart_events_total",
            "restart events observed via the solver hook",
        )
        self._inprocessing = registry.counter(
            "repro_solver_inprocessing_passes_total",
            "budgeted inprocessing passes between incremental calls",
        )

    def restart(self) -> None:
        self._restarts.inc()
        self.tracer.instant("restart", cat="sat")

    def inprocessing(self, subsumed: int, strengthened: int) -> None:
        self._inprocessing.inc()
        self.tracer.instant(
            "inprocessing", cat="sat",
            subsumed=subsumed, strengthened=strengthened,
        )

    def ticks(self, restarts: int = 0, inprocessing: int = 0,
              subsumed: int = 0, strengthened: int = 0) -> None:
        """Post-solve deltas from a core that cannot call back mid-
        search (the native solver): counts are exact, instants are
        pinned to the end of the solve."""
        if restarts:
            self._restarts.inc(restarts)
            self.tracer.instant("restarts", cat="sat", n=restarts)
        if inprocessing or subsumed or strengthened:
            self._inprocessing.inc(max(1, inprocessing))
            self.tracer.instant(
                "inprocessing", cat="sat",
                subsumed=subsumed, strengthened=strengthened,
            )
