"""Trace and metrics export: Chrome trace JSON, run records, files.

One file serves every consumer: the run record is a JSON object whose
``traceEvents`` key is a valid Chrome trace (``chrome://tracing`` and
Perfetto load the file directly — both ignore unknown top-level keys),
while ``spans``, ``metrics`` and ``meta`` carry the stable
machine-readable schema that ``repro stats``, the benchmarks and tests
consume::

    {
      "schema": "repro.trace/1",
      "meta": {"argv": [...], "wall_seconds": 1.93, ...},
      "traceEvents": [{"name", "cat", "ph", "ts", "dur", "pid", "tid",
                       "args"}, ...],
      "spans": [{"name", "cat", "ts", "dur", "id", "parent", "pid",
                 "args"}, ...],
      "metrics": {"schema": "repro.metrics/1", "series": {...}}
    }

Span timestamps are seconds relative to the tracer epoch; Chrome events
are the same instants in integer microseconds (the ``cat/ph/ts/dur``
event schema, phase ``X`` for complete spans and ``i`` for instants).
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from .metrics import MetricsRegistry, NullRegistry
from .trace import Tracer

__all__ = [
    "SCHEMA",
    "to_chrome_events",
    "run_record",
    "write_run_record",
    "load_spans",
]

SCHEMA = "repro.trace/1"

Registry = Union[MetricsRegistry, NullRegistry]


def to_chrome_events(spans: List[dict]) -> List[dict]:
    """Chrome-trace ``traceEvents`` for a list of span records."""
    events = []
    for rec in spans:
        event = {
            "name": rec["name"],
            "cat": rec.get("cat", "repro"),
            "ph": rec.get("ph", "X"),
            "ts": int(rec["ts"] * 1e6),
            "pid": rec.get("pid", 0),
            "tid": rec.get("tid", rec.get("pid", 0)),
            "args": rec.get("args") or {},
        }
        if event["ph"] == "X":
            event["dur"] = int((rec.get("dur") or 0.0) * 1e6)
        else:
            # Instant events scope to their thread.
            event["s"] = "t"
        events.append(event)
    return events


def run_record(tracer: Tracer, registry: Optional[Registry] = None,
               meta: Optional[dict] = None) -> dict:
    """The full run record (Chrome-loadable, see module docstring)."""
    spans = tracer.records()
    record_meta = dict(tracer.meta)
    if meta:
        record_meta.update(meta)
    record = {
        "schema": SCHEMA,
        "meta": record_meta,
        "traceEvents": to_chrome_events(spans),
        "spans": spans,
    }
    if registry is not None:
        record["metrics"] = registry.to_json()
    return record


def write_run_record(dst: Union[str, IO], tracer: Tracer,
                     registry: Optional[Registry] = None,
                     meta: Optional[dict] = None) -> dict:
    """Serialize the run record to a path or file object; returns it."""
    record = run_record(tracer, registry, meta)
    if hasattr(dst, "write"):
        json.dump(record, dst, indent=1, default=str)
        dst.write("\n")
    else:
        with open(dst, "w") as fh:
            json.dump(record, fh, indent=1, default=str)
            fh.write("\n")
    return record


def load_spans(payload: dict) -> List[dict]:
    """Span records from a loaded trace file.

    Accepts the native run record (``spans`` key) and falls back to
    reconstructing records from bare Chrome ``traceEvents`` (either the
    array form or the object form), so ``repro stats`` can read traces
    produced by other tools too.
    """
    if isinstance(payload, dict) and "spans" in payload:
        return payload["spans"]
    events = payload if isinstance(payload, list) else payload.get("traceEvents", [])
    spans = []
    for i, event in enumerate(events):
        if event.get("ph") not in (None, "X", "i"):
            continue
        spans.append({
            "name": event.get("name", "?"),
            "cat": event.get("cat", "repro"),
            "ph": event.get("ph", "X"),
            "ts": event.get("ts", 0) / 1e6,
            "dur": event.get("dur", 0) / 1e6,
            "id": event.get("id", i + 1),
            "parent": None,  # bare Chrome events carry no parent links
            "pid": event.get("pid", 0),
            "args": event.get("args") or None,
        })
    return spans
