"""``repro.obs`` — the telemetry subsystem.

Dependency-free span tracing (:mod:`repro.obs.trace`), a typed metrics
registry (:mod:`repro.obs.metrics`), exports (Chrome trace JSON, stable
run records, Prometheus text — :mod:`repro.obs.export`), and the cost
breakdown behind ``repro stats`` (:mod:`repro.obs.stats`).

The module owns one process-global ``(tracer, registry)`` pair.  By
default both are no-op singletons: every instrumentation site in the
stack calls :func:`get_tracer` / :func:`get_registry` unconditionally
and pays only a module-global read when observability is off (the <2%
disabled-overhead budget gated by ``benchmarks/bench_obs_overhead.py``).
:func:`enable` swaps in live instances; :func:`observe` is the scoped
form the CLI uses::

    with observe(meta={"command": "audit"}) as (tracer, registry):
        ...                       # every layer records spans/counters
    record = run_record(tracer, registry)

**No other repro module may be imported from here** — ``repro.smt``
(the hottest layer) imports ``repro.obs``, so the dependency arrow
points one way only.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple, Union

from .export import (
    SCHEMA,
    load_spans,
    run_record,
    to_chrome_events,
    write_run_record,
)
from .hooks import SolverEventSink
from .metrics import (
    NULL_REGISTRY,
    SOLVER_COUNTER_KEYS,
    SOLVER_GAUGE_KEYS,
    MetricsRegistry,
    NullRegistry,
    solver_counter_snapshot,
)
from .stats import aggregate, coverage, load_trace, render_stats
from .trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "SCHEMA",
    "SOLVER_COUNTER_KEYS",
    "SOLVER_GAUGE_KEYS",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "NullRegistry",
    "SolverEventSink",
    "solver_counter_snapshot",
    "get_tracer",
    "get_registry",
    "enabled",
    "enable",
    "disable",
    "observe",
    "run_record",
    "write_run_record",
    "to_chrome_events",
    "load_spans",
    "load_trace",
    "aggregate",
    "coverage",
    "render_stats",
]

_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_registry: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-global tracer (the no-op singleton when disabled)."""
    return _tracer


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The process-global metrics registry (no-op when disabled)."""
    return _registry


def enabled() -> bool:
    return _tracer.enabled


def enable(tracer: Optional[Tracer] = None,
           registry: Optional[MetricsRegistry] = None,
           meta: Optional[dict] = None) -> Tuple[Tracer, MetricsRegistry]:
    """Install a live tracer + registry; returns them."""
    global _tracer, _registry
    _tracer = tracer if tracer is not None else Tracer(meta=meta)
    _registry = registry if registry is not None else MetricsRegistry()
    return _tracer, _registry


def disable() -> None:
    """Restore the no-op singletons."""
    global _tracer, _registry
    _tracer = NULL_TRACER
    _registry = NULL_REGISTRY


@contextmanager
def observe(meta: Optional[dict] = None,
            tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None):
    """Scoped observability: enable on entry, restore the previous
    state on exit.  Yields ``(tracer, registry)``."""
    global _tracer, _registry
    prev = (_tracer, _registry)
    pair = enable(tracer=tracer, registry=registry, meta=meta)
    try:
        yield pair
    finally:
        _tracer, _registry = prev
