"""``repro.obs`` — the telemetry subsystem.

Dependency-free span tracing (:mod:`repro.obs.trace`), a typed metrics
registry (:mod:`repro.obs.metrics`), exports (Chrome trace JSON, stable
run records, Prometheus text — :mod:`repro.obs.export`), and the cost
breakdown behind ``repro stats`` (:mod:`repro.obs.stats`).

The module owns one process-global ``(tracer, registry)`` pair.  By
default both are no-op singletons: every instrumentation site in the
stack calls :func:`get_tracer` / :func:`get_registry` unconditionally
and pays only a module-global read when observability is off (the <2%
disabled-overhead budget gated by ``benchmarks/bench_obs_overhead.py``).
:func:`enable` swaps in live instances; :func:`observe` is the scoped
form the CLI uses::

    with observe(meta={"command": "audit"}) as (tracer, registry):
        ...                       # every layer records spans/counters
    record = run_record(tracer, registry)

**No other repro module may be imported from here** — ``repro.smt``
(the hottest layer) imports ``repro.obs``, so the dependency arrow
points one way only.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional, Tuple, Union

from .export import (
    SCHEMA,
    load_spans,
    run_record,
    to_chrome_events,
    write_run_record,
)
from .hooks import SolverEventSink
from .log import NULL_LOGGER, EventLogger, JsonlSink, NullLogger
from .metrics import (
    NULL_REGISTRY,
    SOLVER_COUNTER_KEYS,
    SOLVER_GAUGE_KEYS,
    MetricsRegistry,
    NullRegistry,
    solver_counter_snapshot,
)
from .stats import aggregate, coverage, load_trace, render_stats
from .trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "SCHEMA",
    "SOLVER_COUNTER_KEYS",
    "SOLVER_GAUGE_KEYS",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "NullRegistry",
    "EventLogger",
    "NullLogger",
    "JsonlSink",
    "SolverEventSink",
    "solver_counter_snapshot",
    "get_tracer",
    "get_registry",
    "get_logger",
    "set_logger",
    "enabled",
    "enable",
    "disable",
    "observe",
    "request_scope",
    "run_record",
    "write_run_record",
    "to_chrome_events",
    "load_spans",
    "load_trace",
    "aggregate",
    "coverage",
    "render_stats",
]

_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_registry: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY
_logger: Union[EventLogger, NullLogger] = NULL_LOGGER

#: Per-thread overrides installed by :func:`request_scope`.  A resident
#: daemon serves many requests concurrently from one process; scoping
#: the tracer/logger per *thread* gives each request its own bounded
#: span tree and request-id-bound log context while the process-global
#: pair keeps serving every other caller.
_scope = threading.local()


def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer: this thread's :func:`request_scope` override
    when one is installed, else the process-global tracer (the no-op
    singleton when disabled)."""
    tracer = getattr(_scope, "tracer", None)
    return tracer if tracer is not None else _tracer


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The process-global metrics registry (no-op when disabled).
    Deliberately *not* request-scoped: metrics are daemon-lifetime
    aggregates, so every request folds into the same registry."""
    return _registry


def get_logger() -> Union[EventLogger, NullLogger]:
    """The active structured event logger: this thread's
    :func:`request_scope` override (typically bound to a request id)
    when one is installed, else the process-global logger."""
    logger = getattr(_scope, "logger", None)
    return logger if logger is not None else _logger


def set_logger(
    logger: Optional[Union[EventLogger, NullLogger]],
) -> Union[EventLogger, NullLogger]:
    """Install the process-global event logger (``None`` restores the
    no-op singleton); returns the previous one."""
    global _logger
    previous = _logger
    _logger = logger if logger is not None else NULL_LOGGER
    return previous


def enabled() -> bool:
    return get_tracer().enabled


def enable(tracer: Optional[Tracer] = None,
           registry: Optional[MetricsRegistry] = None,
           meta: Optional[dict] = None) -> Tuple[Tracer, MetricsRegistry]:
    """Install a live tracer + registry; returns them."""
    global _tracer, _registry
    _tracer = tracer if tracer is not None else Tracer(meta=meta)
    _registry = registry if registry is not None else MetricsRegistry()
    return _tracer, _registry


def disable() -> None:
    """Restore the no-op singletons."""
    global _tracer, _registry
    _tracer = NULL_TRACER
    _registry = NULL_REGISTRY


@contextmanager
def observe(meta: Optional[dict] = None,
            tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None):
    """Scoped observability: enable on entry, restore the previous
    state on exit.  Yields ``(tracer, registry)``."""
    global _tracer, _registry
    prev = (_tracer, _registry)
    pair = enable(tracer=tracer, registry=registry, meta=meta)
    try:
        yield pair
    finally:
        _tracer, _registry = prev


@contextmanager
def request_scope(tracer: Optional[Union[Tracer, NullTracer]] = None,
                  logger: Optional[Union[EventLogger, NullLogger]] = None):
    """Thread-local observability scope for one request.

    Inside the block, :func:`get_tracer` / :func:`get_logger` on *this
    thread* resolve to the given instances (``None`` leaves that slot
    on the process-global default); other threads are untouched.  This
    is how ``repro serve`` gives each in-flight request its own
    bounded-lifetime tracer and request-id-bound logger: every
    instrumentation site below — engine, session, solver — keeps
    calling the same module-global accessors and transparently lands
    in the request's scope.  Scopes nest; the previous override is
    restored on exit even when the request unwinds with an error.
    """
    prev = (getattr(_scope, "tracer", None), getattr(_scope, "logger", None))
    if tracer is not None:
        _scope.tracer = tracer
    if logger is not None:
        _scope.logger = logger
    try:
        yield
    finally:
        _scope.tracer, _scope.logger = prev
