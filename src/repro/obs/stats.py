"""Cost breakdown of a saved trace: ``repro stats OUT.json``.

Loads a run record (or bare Chrome trace), computes **exclusive time**
per span — duration minus the duration of its direct children, i.e.
the time genuinely spent at that level of the stack — and aggregates
by span name (or category, or a tag), rendering the top-k rows as a
table.  Exclusive times partition each root span exactly, so the
"total" column sums consistently: attribution never double-counts.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from .export import load_spans

__all__ = ["SpanStats", "aggregate", "coverage", "histogram_summaries",
           "render_stats", "load_trace"]


def load_trace(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


class SpanStats:
    """Aggregated cost of one span group."""

    __slots__ = ("key", "cat", "count", "total", "exclusive")

    def __init__(self, key: str, cat: str):
        self.key = key
        self.cat = cat
        self.count = 0
        self.total = 0.0
        self.exclusive = 0.0


def _exclusive_times(spans: List[dict]) -> Dict[int, float]:
    """span id -> duration minus direct children's durations."""
    exclusive = {rec["id"]: float(rec.get("dur") or 0.0) for rec in spans}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None and parent in exclusive:
            exclusive[parent] -= float(rec.get("dur") or 0.0)
    return exclusive


def aggregate(spans: List[dict], by: str = "name") -> List[SpanStats]:
    """Group spans by ``name`` / ``cat`` / ``tag:<key>``; sorted by
    exclusive time, descending."""
    exclusive = _exclusive_times(spans)
    groups: Dict[str, SpanStats] = {}
    for rec in spans:
        if rec.get("ph") == "i":
            continue
        if by == "name":
            key = f"{rec.get('cat', 'repro')}:{rec['name']}"
        elif by == "cat":
            key = rec.get("cat", "repro")
        elif by.startswith("tag:"):
            args = rec.get("args") or {}
            key = str(args.get(by[4:], "-"))
        else:
            raise ValueError(f"unknown grouping {by!r}")
        stats = groups.get(key)
        if stats is None:
            stats = groups[key] = SpanStats(key, rec.get("cat", "repro"))
        stats.count += 1
        stats.total += float(rec.get("dur") or 0.0)
        stats.exclusive += max(0.0, exclusive[rec["id"]])
    return sorted(groups.values(), key=lambda s: -s.exclusive)


def _roots(spans: List[dict]) -> List[dict]:
    ids = {rec["id"] for rec in spans}
    return [
        rec for rec in spans
        if rec.get("ph") != "i"
        and (rec.get("parent") is None or rec["parent"] not in ids)
    ]


def coverage(spans: List[dict], wall_seconds: Optional[float] = None) -> dict:
    """How much wall time the span tree accounts for.

    ``root_seconds`` is the summed duration of root spans;
    ``child_coverage`` is the fraction of root time covered by their
    direct children (attribution depth); ``wall_coverage`` compares the
    roots against the recorded process wall time when available.
    """
    roots = _roots(spans)
    root_seconds = sum(float(r.get("dur") or 0.0) for r in roots)
    root_ids = {r["id"] for r in roots}
    child_seconds = sum(
        float(rec.get("dur") or 0.0)
        for rec in spans
        if rec.get("ph") != "i" and rec.get("parent") in root_ids
    )
    out = {
        "n_spans": sum(1 for r in spans if r.get("ph") != "i"),
        "n_roots": len(roots),
        "root_seconds": root_seconds,
        "child_coverage": (child_seconds / root_seconds) if root_seconds else 0.0,
    }
    if wall_seconds:
        out["wall_seconds"] = wall_seconds
        out["wall_coverage"] = min(1.0, root_seconds / wall_seconds)
    return out


_HIST_KEY = re.compile(
    r"^(?P<name>.+)_(?P<part>count|sum|p50|p95|p99)(?P<labels>\{.*\})?$"
)

_HIST_PARTS = frozenset({"count", "sum", "p50", "p95", "p99"})


def histogram_summaries(series: Dict[str, float]) -> List[dict]:
    """Histogram rows reconstructed from a flat metrics snapshot.

    A histogram contributes ``<name>_count/_sum/_p50/_p95/_p99`` per
    label set to :meth:`MetricsRegistry.snapshot`; a series group is
    only reported as a histogram when all five parts are present, so
    counters that merely end in ``_count`` never alias."""
    groups: Dict[tuple, Dict[str, float]] = {}
    for key, value in series.items():
        match = _HIST_KEY.match(key)
        if match is None:
            continue
        gkey = (match.group("name"), match.group("labels") or "")
        groups.setdefault(gkey, {})[match.group("part")] = value
    out = []
    for (name, labels), parts in sorted(groups.items()):
        if not _HIST_PARTS <= parts.keys():
            continue
        out.append({"name": name + labels, **parts})
    return out


def render_stats(payload: dict, top: int = 20, by: str = "name") -> str:
    """The human-readable breakdown table for one loaded trace."""
    spans = load_spans(payload)
    meta = payload.get("meta", {}) if isinstance(payload, dict) else {}
    rows = aggregate(spans, by=by)
    # Retained slow-request traces (the daemon's flight recorder) stamp
    # the request latency as "seconds"; CLI --trace records stamp
    # "wall_seconds".  Either anchors the coverage line.
    cov = coverage(spans, meta.get("wall_seconds") or meta.get("seconds"))
    total_excl = sum(r.exclusive for r in rows) or 1.0

    lines = []
    what = meta.get("command") or meta.get("argv") or "trace"
    if meta.get("request_id"):
        what = f"{what} [request {meta['request_id']}]"
    if meta.get("scenario"):
        what = f"{what} ({meta['scenario']})"
    lines.append(f"trace: {what} — {cov['n_spans']} spans, "
                 f"{cov['root_seconds']:.3f}s under {cov['n_roots']} root(s)")
    if "wall_coverage" in cov:
        lines.append(f"wall-time coverage: {cov['wall_coverage']:.1%} of "
                     f"{cov['wall_seconds']:.3f}s recorded wall time")
    width = max([len(r.key) for r in rows[:top]] + [8])
    lines.append("")
    lines.append(f"{'span':<{width}}  {'count':>7}  {'total s':>9}  "
                 f"{'excl s':>9}  {'excl %':>7}")
    for row in rows[:top]:
        lines.append(
            f"{row.key:<{width}}  {row.count:>7}  {row.total:>9.3f}  "
            f"{row.exclusive:>9.3f}  {row.exclusive / total_excl:>6.1%}"
        )
    if len(rows) > top:
        rest = sum(r.exclusive for r in rows[top:])
        lines.append(f"{'(other)':<{width}}  {sum(r.count for r in rows[top:]):>7}  "
                     f"{'':>9}  {rest:>9.3f}  {rest / total_excl:>6.1%}")

    metrics = payload.get("metrics") if isinstance(payload, dict) else None
    hists = histogram_summaries((metrics or {}).get("series", {}))
    if hists:
        hwidth = max([len(h["name"]) for h in hists] + [9])
        lines.append("")
        lines.append("histograms (bucket-estimated percentiles):")
        lines.append(f"{'series':<{hwidth}}  {'count':>7}  {'sum':>10}  "
                     f"{'p50':>9}  {'p95':>9}  {'p99':>9}")
        for h in hists:
            lines.append(
                f"{h['name']:<{hwidth}}  {int(h['count']):>7}  "
                f"{h['sum']:>10.3f}  {h['p50']:>9.4f}  {h['p95']:>9.4f}  "
                f"{h['p99']:>9.4f}"
            )
    return "\n".join(lines)
