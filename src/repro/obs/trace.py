"""Hierarchical span tracing with bounded disabled-path overhead.

A :class:`Tracer` produces a tree of **spans** — named, tagged,
monotonic-clock intervals — that mirrors the call structure of a
verification run::

    audit > slice > check > solve
    prove > engine-round > query
    repair > generation > candidate-screen

Spans nest through an explicit stack (``with tracer.span(...)``), close
correctly when an exception unwinds through them (the error is recorded
as a tag, so a solver-budget blowup mid-span still yields a loadable
trace), and are recorded as flat, picklable dicts — which is what lets
:func:`repro.core.engine.execute_jobs` ship worker-process spans back
to the parent and merge them deterministically (:meth:`Tracer.adopt`).

The **disabled** path is the design constraint: every hot layer calls
``get_tracer()`` unconditionally, so when tracing is off the call must
cost a global read plus a no-op context manager — the
:class:`NullTracer` singleton returns one preallocated handle from
every ``span()`` call and allocates nothing per call (regression-tested
in ``tests/obs/test_obs_trace.py``).

Timestamps are ``time.perf_counter()`` relative to the tracer's epoch
(monotonic — never wallclock arithmetic between spans); the epoch's
wall-clock instant is kept only to rebase spans merged from other
processes.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Dict, List, Optional

__all__ = [
    "SpanHandle",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


class SpanHandle:
    """One open span: a reentrant-unsafe, single-use context manager."""

    __slots__ = ("tracer", "name", "cat", "id", "parent", "start", "args", "dur")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 parent: Optional[int], args: Optional[dict]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.id = next(tracer._ids)
        self.parent = parent
        self.args = args
        self.start = 0.0
        self.dur: Optional[float] = None

    def tag(self, **tags) -> "SpanHandle":
        """Attach structural tags (invariant id, cache hit, verdict…)."""
        if self.args is None:
            self.args = tags
        else:
            self.args.update(tags)
        return self

    def __enter__(self) -> "SpanHandle":
        self.start = time.perf_counter() - self.tracer.epoch
        self.tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            # An exception unwinding through a span still closes it —
            # and says so, so a partial trace explains itself.
            self.tag(error=exc_type.__name__)
        self.tracer._close(self)
        return False


class Tracer:
    """Span recorder.  One per process; workers create their own and
    ship records back (see :meth:`records` / :meth:`adopt`)."""

    enabled = True

    def __init__(self, meta: Optional[dict] = None):
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self.meta = dict(meta or {})
        self.pid = os.getpid()
        self.spans: List[dict] = []  # closed spans, in close order
        self._stack: List[SpanHandle] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "repro", **tags) -> SpanHandle:
        """Open a span as a context manager; nests under the innermost
        open span."""
        parent = self._stack[-1].id if self._stack else None
        return SpanHandle(self, name, cat, parent, tags or None)

    def instant(self, name: str, cat: str = "repro", **tags) -> None:
        """A zero-duration event pinned to the current moment (solver
        restarts, inprocessing ticks)."""
        self.spans.append({
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": time.perf_counter() - self.epoch,
            "dur": 0.0,
            "id": next(self._ids),
            "parent": self._stack[-1].id if self._stack else None,
            "pid": self.pid,
            "args": tags or None,
        })

    def _close(self, handle: SpanHandle) -> None:
        now = time.perf_counter() - self.epoch
        # Exceptions may unwind through several spans at once; close
        # every span opened after (and including) this handle so the
        # stack never leaks an open frame.
        while self._stack:
            top = self._stack.pop()
            top.dur = now - top.start
            self.spans.append({
                "name": top.name,
                "cat": top.cat,
                "ph": "X",
                "ts": top.start,
                "dur": top.dur,
                "id": top.id,
                "parent": top.parent,
                "pid": self.pid,
                "args": top.args,
            })
            if top is handle:
                break

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------
    def records(self) -> List[dict]:
        """The closed spans as plain picklable dicts (shipping format
        for worker processes)."""
        return list(self.spans)

    def adopt(self, records: List[dict], wall_epoch: Optional[float] = None,
              parent: Optional[int] = None, tid: Optional[int] = None) -> None:
        """Merge spans recorded by another tracer (typically a worker
        process) into this timeline.

        Ids are remapped onto this tracer's sequence **in record
        order**, so adopting workers' records sorted by job index gives
        a deterministic merged trace regardless of scheduling.
        ``wall_epoch`` (the worker tracer's :attr:`wall_epoch`) rebases
        the foreign timestamps onto this tracer's clock; orphan spans
        are attached under ``parent``.
        """
        offset = 0.0
        if wall_epoch is not None:
            offset = wall_epoch - self.wall_epoch
        # Records arrive in *close* order (children before parents), so
        # ids must all be assigned before any parent link is rewritten.
        remap: Dict[int, int] = {}
        for rec in records:
            remap[rec["id"]] = next(self._ids)
        for rec in records:
            new_parent = rec.get("parent")
            new_parent = remap.get(new_parent, None) if new_parent else None
            self.spans.append({
                **rec,
                "ts": rec["ts"] + offset,
                "id": remap[rec["id"]],
                "parent": new_parent if new_parent is not None else parent,
                "tid": rec.get("tid") if tid is None else tid,
            })


class _NullSpan:
    """The shared no-op span: `with` costs two attribute calls, and the
    handle is one process-wide singleton — repeated disabled-path calls
    allocate nothing."""

    __slots__ = ()

    def tag(self, **tags):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()``/``instant()`` resolves to
    the shared no-op handle.  Installed by default."""

    enabled = False
    spans: List[dict] = []
    meta: dict = {}

    def span(self, name, cat="repro", **tags):
        return _NULL_SPAN

    def instant(self, name, cat="repro", **tags):
        return None

    def records(self):
        return []

    def adopt(self, records, wall_epoch=None, parent=None, tid=None):
        return None

    @property
    def open_spans(self):
        return 0


NULL_TRACER = NullTracer()
