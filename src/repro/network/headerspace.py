"""Header-space algebra (the HSA substrate, paper §2.3).

Static-datapath tools like HSA represent sets of packet headers as
unions of wildcard expressions and push them through transfer
functions.  Our headers are finite-domain fields, so a wildcard
expression becomes a :class:`HeaderBox` — a product of per-field value
sets — and a :class:`HeaderSpace` is a finite union of boxes supporting
intersection, subtraction and emptiness, the operations reachability
analysis needs.

The pipeline checker (:mod:`repro.network.pipeline`) uses this algebra
to express "all http traffic" style packet classes, and the tests use
it as an independent substrate check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

__all__ = ["FIELDS", "HeaderBox", "HeaderSpace"]

#: The header fields of this model's packets.
FIELDS = ("src", "dst", "sport", "dport", "origin", "tag")


@dataclass(frozen=True)
class HeaderBox:
    """A product set: each field maps to an allowed value set
    (missing field = wildcard).  Immutable and hashable."""

    constraints: Tuple[Tuple[str, FrozenSet], ...] = ()

    @staticmethod
    def of(**field_sets) -> "HeaderBox":
        items = []
        for name, values in sorted(field_sets.items()):
            if name not in FIELDS:
                raise ValueError(f"unknown header field {name!r}")
            if values is not None:
                items.append((name, frozenset(values)))
        return HeaderBox(tuple(items))

    @property
    def as_dict(self) -> Dict[str, FrozenSet]:
        return dict(self.constraints)

    def allowed(self, name: str) -> Optional[FrozenSet]:
        return self.as_dict.get(name)

    # ------------------------------------------------------------------
    def contains(self, header: Mapping[str, object]) -> bool:
        return all(header[name] in values for name, values in self.constraints)

    def is_empty(self) -> bool:
        return any(not values for _, values in self.constraints)

    def intersect(self, other: "HeaderBox") -> "HeaderBox":
        merged: Dict[str, FrozenSet] = dict(self.constraints)
        for name, values in other.constraints:
            merged[name] = merged[name] & values if name in merged else values
        return HeaderBox(tuple(sorted(merged.items())))

    def subtract(self, other: "HeaderBox", universes: Mapping[str, FrozenSet]
                 ) -> List["HeaderBox"]:
        """``self - other`` as a disjoint list of boxes.

        Standard box decomposition: peel one constrained field at a
        time.  ``universes`` supplies full value sets for wildcarded
        fields of ``self``.
        """
        if self.intersect(other).is_empty():
            return [] if self.is_empty() else [self]
        remainder: List[HeaderBox] = []
        prefix: Dict[str, FrozenSet] = {}
        mine = self.as_dict
        for name, other_values in other.constraints:
            my_values = mine.get(name, frozenset(universes[name]))
            outside = my_values - other_values
            if outside:
                piece = dict(mine)
                piece.update(prefix)
                piece[name] = outside
                box = HeaderBox(tuple(sorted(piece.items())))
                if not box.is_empty():
                    remainder.append(box)
            prefix[name] = my_values & other_values
        return remainder

    def __str__(self) -> str:
        if not self.constraints:
            return "*"
        parts = [
            f"{name}∈{{{','.join(map(str, sorted(values)))}}}"
            for name, values in self.constraints
        ]
        return " ∧ ".join(parts)


class HeaderSpace:
    """A finite union of :class:`HeaderBox`."""

    def __init__(self, boxes: Iterable[HeaderBox] = (),
                 universes: Optional[Mapping[str, FrozenSet]] = None):
        self.boxes: List[HeaderBox] = [b for b in boxes if not b.is_empty()]
        self.universes: Dict[str, FrozenSet] = dict(universes or {})

    @staticmethod
    def everything(universes: Mapping[str, FrozenSet]) -> "HeaderSpace":
        return HeaderSpace([HeaderBox()], universes)

    @staticmethod
    def empty(universes: Optional[Mapping[str, FrozenSet]] = None) -> "HeaderSpace":
        return HeaderSpace([], universes)

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.boxes

    def contains(self, header: Mapping[str, object]) -> bool:
        return any(b.contains(header) for b in self.boxes)

    def intersect(self, other: "HeaderSpace") -> "HeaderSpace":
        out = [
            a.intersect(b)
            for a in self.boxes
            for b in other.boxes
        ]
        return HeaderSpace(out, self.universes or other.universes)

    def union(self, other: "HeaderSpace") -> "HeaderSpace":
        return HeaderSpace(
            self.boxes + other.boxes, self.universes or other.universes
        )

    def subtract(self, other: "HeaderSpace") -> "HeaderSpace":
        if not self.universes:
            raise ValueError("subtract needs field universes")
        current = list(self.boxes)
        for b in other.boxes:
            nxt: List[HeaderBox] = []
            for a in current:
                nxt.extend(a.subtract(b, self.universes))
            current = nxt
        return HeaderSpace(current, self.universes)

    def enumerate_headers(self) -> Iterable[Dict[str, object]]:
        """All concrete headers (test-sized universes only)."""
        from itertools import product

        if not self.universes:
            raise ValueError("enumeration needs field universes")
        names = list(FIELDS)
        for combo in product(*(sorted(self.universes[f], key=repr) for f in names)):
            header = dict(zip(names, combo))
            if self.contains(header):
                yield header

    def __str__(self) -> str:
        if not self.boxes:
            return "∅"
        return " ∨ ".join(f"({b})" for b in self.boxes)
