"""Concrete network topologies: hosts, switches, middleboxes, links.

This is the input side of the static-datapath substrate (paper §2.3,
§3.5): scenarios build a physical topology with switches and forwarding
tables, and :mod:`repro.network.transfer` collapses it VeriFlow-style
into the transfer rules the SMT model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

__all__ = ["HOST", "SWITCH", "MIDDLEBOX", "Node", "Topology"]

HOST = "host"
SWITCH = "switch"
MIDDLEBOX = "middlebox"


@dataclass
class Node:
    """A topology node.  ``model`` is the middlebox model instance for
    middlebox nodes; ``policy_group`` is the operator-assigned group a
    host belongs to (paper §5.1's policy groups)."""

    name: str
    kind: str
    model: Optional[object] = None
    policy_group: Optional[str] = None


class Topology:
    """An undirected physical topology with typed nodes."""

    def __init__(self):
        self._nodes: Dict[str, Node] = {}
        self.graph = nx.Graph()

    # ------------------------------------------------------------------
    def _add(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self.graph.add_node(node.name)
        return node

    def add_host(self, name: str, policy_group: Optional[str] = None) -> Node:
        return self._add(Node(name, HOST, policy_group=policy_group))

    def add_switch(self, name: str) -> Node:
        return self._add(Node(name, SWITCH))

    def add_middlebox(self, model) -> Node:
        """Register a middlebox by its model instance (name from model)."""
        return self._add(Node(model.name, MIDDLEBOX, model=model))

    def add_link(self, a: str, b: str) -> None:
        for n in (a, b):
            if n not in self._nodes:
                raise KeyError(f"unknown node {n!r}")
        if a == b:
            raise ValueError("self-links are not allowed")
        self.graph.add_edge(a, b)

    # ------------------------------------------------------------------
    # Mutation API (incremental verification applies NetworkDeltas here)
    # ------------------------------------------------------------------
    def remove_node(self, name: str) -> Node:
        """Remove a node and every link attached to it."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        node = self._nodes.pop(name)
        self.graph.remove_node(name)
        return node

    def remove_link(self, a: str, b: str) -> None:
        if not self.graph.has_edge(a, b):
            raise KeyError(f"no link between {a!r} and {b!r}")
        self.graph.remove_edge(a, b)

    def has_link(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def replace_middlebox(self, model) -> object:
        """Swap the model of the middlebox named ``model.name``; links
        and position are unchanged.  Returns the previous model (so the
        caller can build the inverse edit)."""
        node = self._nodes.get(model.name)
        if node is None or node.kind != MIDDLEBOX:
            raise KeyError(f"no middlebox named {model.name!r}")
        old = node.model
        node.model = model
        return old

    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def neighbors(self, name: str) -> List[str]:
        return sorted(self.graph.neighbors(name))

    def _of_kind(self, kind: str) -> List[Node]:
        return [n for n in self._nodes.values() if n.kind == kind]

    @property
    def hosts(self) -> List[Node]:
        return self._of_kind(HOST)

    @property
    def switches(self) -> List[Node]:
        return self._of_kind(SWITCH)

    @property
    def middleboxes(self) -> List[Node]:
        return self._of_kind(MIDDLEBOX)

    @property
    def edge_nodes(self) -> List[Node]:
        """Hosts and middleboxes — the nodes that survive the collapse."""
        return [n for n in self._nodes.values() if n.kind != SWITCH]

    def middlebox_models(self) -> Tuple[object, ...]:
        return tuple(n.model for n in self.middleboxes)

    def policy_group_of(self, host: str) -> Optional[str]:
        return self._nodes[host].policy_group

    def hosts_in_group(self, group: str) -> List[str]:
        return sorted(
            n.name for n in self.hosts if n.policy_group == group
        )

    @property
    def policy_groups(self) -> List[str]:
        return sorted({n.policy_group for n in self.hosts if n.policy_group})

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"Topology({len(self.hosts)} hosts, {len(self.switches)} switches, "
            f"{len(self.middleboxes)} middleboxes, {self.graph.number_of_edges()} links)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
