"""Pipeline-invariant checking on the static datapath (paper §2.3).

Pipeline invariants — "all packets of class C entering at I must pass
through middleboxes m1, m2, ... before reaching d" — are the static
half of VMN's modularized verification: the paper checks them with
existing dataplane tools (HSA/VeriFlow) rather than the SMT model.
Here the checker traces the deterministic walk each (ingress,
destination) pair takes through the switch fabric and steering chains,
and compares the middleboxes traversed against the required DAG stage
list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .failures import NO_FAILURE, FailureScenario
from .forwarding import ForwardingState
from .topology import MIDDLEBOX, Topology
from .transfer import ForwardingLoopError, SteeringPolicy, walk

__all__ = ["PipelineInvariant", "PipelineResult", "trace_path", "check_pipeline"]


@dataclass(frozen=True)
class PipelineInvariant:
    """Packets from ``ingress`` to ``dst`` must traverse ``chain`` in
    order (other middleboxes may appear in between)."""

    ingress: str
    dst: str
    chain: Tuple[str, ...]

    @staticmethod
    def of(ingress: str, dst: str, chain: Sequence[str]) -> "PipelineInvariant":
        return PipelineInvariant(ingress=ingress, dst=dst, chain=tuple(chain))


@dataclass
class PipelineResult:
    ok: bool
    path: Tuple[str, ...]
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def trace_path(
    topology: Topology,
    state: ForwardingState,
    steering: Optional[SteeringPolicy],
    ingress: str,
    dst: str,
    scenario: FailureScenario = NO_FAILURE,
    max_hops: int = 64,
) -> Tuple[str, ...]:
    """The edge-node path a packet takes from ``ingress`` towards ``dst``.

    Follows steering stages and forwarding tables until the destination
    is reached or the packet is dropped; nondeterministic deliveries
    (multiple reachable targets from one hop) raise ``ValueError`` since
    pipeline checking expects deterministic fabrics.
    """
    steering = steering or SteeringPolicy()
    path = [ingress]
    cur = ingress
    for _ in range(max_hops):
        if cur == dst:
            return tuple(path)
        stage = steering.next_stage(cur, dst)
        if stage is None or not scenario.node_ok(stage):
            return tuple(path)  # dropped at a dead chain stage
        hits = walk(topology, state, cur, stage, scenario)
        if not hits:
            return tuple(path)  # dropped: no route
        if len(hits) > 1:
            raise ValueError(
                f"nondeterministic delivery from {cur!r} towards {stage!r}: {hits}"
            )
        cur = hits[0]
        path.append(cur)
    raise ForwardingLoopError(path, dst)


def _is_subsequence(needle: Sequence[str], hay: Sequence[str]) -> bool:
    it = iter(hay)
    return all(x in it for x in needle)


def check_pipeline(
    topology: Topology,
    state: ForwardingState,
    steering: Optional[SteeringPolicy],
    invariant: PipelineInvariant,
    scenario: FailureScenario = NO_FAILURE,
) -> PipelineResult:
    """Does the (ingress, dst) walk traverse the required chain in order
    and actually reach the destination?"""
    path = trace_path(
        topology, state, steering, invariant.ingress, invariant.dst, scenario
    )
    if path[-1] != invariant.dst:
        return PipelineResult(
            ok=False, path=path, reason=f"traffic never reaches {invariant.dst!r}"
        )
    traversed = [n for n in path[1:-1] if topology.node(n).kind == MIDDLEBOX]
    if not _is_subsequence(invariant.chain, traversed):
        return PipelineResult(
            ok=False,
            path=path,
            reason=(
                f"required chain {'->'.join(invariant.chain)} not traversed; "
                f"saw {'->'.join(traversed) or '(none)'}"
            ),
        )
    return PipelineResult(ok=True, path=path)
