"""Static-datapath substrate: topologies, forwarding, transfer functions.

The modularized network model of the paper (§2.3): switches and
forwarding tables are verified/collapsed with VeriFlow/HSA-style
machinery here, middleboxes with the SMT model in
:mod:`repro.netmodel`.
"""

from .failures import NO_FAILURE, FailureScenario, single_failures
from .forwarding import ForwardingEntry, ForwardingState, shortest_path_tables
from .headerspace import FIELDS, HeaderBox, HeaderSpace
from .pipeline import PipelineInvariant, PipelineResult, check_pipeline, trace_path
from .topology import HOST, MIDDLEBOX, SWITCH, Node, Topology
from .transfer import (
    ForwardingLoopError,
    SteeringPolicy,
    build_verification_network,
    compute_transfer_rules,
    forwarding_equivalence_classes,
    walk,
)

__all__ = [
    "Topology",
    "Node",
    "HOST",
    "SWITCH",
    "MIDDLEBOX",
    "FailureScenario",
    "NO_FAILURE",
    "single_failures",
    "ForwardingEntry",
    "ForwardingState",
    "shortest_path_tables",
    "HeaderBox",
    "HeaderSpace",
    "FIELDS",
    "SteeringPolicy",
    "walk",
    "compute_transfer_rules",
    "forwarding_equivalence_classes",
    "build_verification_network",
    "ForwardingLoopError",
    "PipelineInvariant",
    "PipelineResult",
    "check_pipeline",
    "trace_path",
]
