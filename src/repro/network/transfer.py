"""VeriFlow-style transfer-function computation (paper §3.5).

VMN does not model switches in the solver.  Instead, for each failure
scenario, the static datapath (switches + forwarding tables) is
collapsed into the transfer function of the pseudo-node Ω: an edge-node
to edge-node delivery relation.  The paper uses VeriFlow for this; here
:func:`compute_transfer_rules` performs the same computation:

* For each (ingress edge node, destination) pair, walk the switch
  fabric following first-match forwarding tables until another edge
  node is reached; a static forwarding loop raises
  :class:`ForwardingLoopError`, exactly as the paper prescribes ("VMN
  therefore throws an exception when a static forwarding loop is
  encountered").
* Middlebox *service chains* are applied at this level, in the style of
  segment routing: a :class:`SteeringPolicy` maps each destination to
  the ordered chain of middleboxes its traffic must traverse, and the
  walk targets the next chain stage for the given ingress.  Scenario
  builders express pipelines here; per-failure-scenario chains model
  backup paths, and the §5.1 "Traversal" misconfiguration is a chain
  that drops the IDPS stage after a failure.
* Rules are compacted by merging identical behaviour — the analogue of
  VeriFlow's packet equivalence classes — and
  :func:`forwarding_equivalence_classes` reports the resulting classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..netmodel.rules import HeaderMatch, TransferRule
from ..netmodel.system import VerificationNetwork
from .failures import NO_FAILURE, FailureScenario
from .forwarding import ForwardingState
from .topology import SWITCH, Topology

__all__ = [
    "ForwardingLoopError",
    "SteeringPolicy",
    "walk",
    "compute_transfer_rules",
    "forwarding_equivalence_classes",
    "build_verification_network",
]


class ForwardingLoopError(Exception):
    """A static forwarding loop was encountered during the collapse."""

    def __init__(self, switches: Sequence[str], target: str):
        self.switches = tuple(switches)
        self.target = target
        super().__init__(
            f"forwarding loop towards {target!r} through switches "
            f"{' -> '.join(switches)}"
        )


@dataclass(frozen=True)
class SteeringPolicy:
    """Destination -> ordered middlebox chain (service chaining).

    ``chains[dst] = (m1, m2)`` means traffic for ``dst`` must traverse
    ``m1`` then ``m2``.  The chain consulted may depend on the failure
    scenario — callers hand in per-scenario policies (paper §3.5's
    failure-condition-to-transfer-function mapping).

    ``joins`` handles boxes that inject traffic into the middle of other
    destinations' chains — the ISP scenario's scrubber (§5.3.3), whose
    output should *resume* the destination's pipeline at the stateful
    firewall.  ``joins[node][dst]`` names the next stage for traffic
    ``node`` emits towards ``dst`` (the destination itself to deliver
    directly — which is exactly the paper's bypass misconfiguration).
    """

    chains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    joins: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def next_stage(self, ingress: str, dst: str) -> Optional[str]:
        """Where a packet for ``dst`` entering from ``ingress`` goes next.

        Hosts and off-chain middleboxes send to the first chain stage;
        stage ``i`` sends to stage ``i+1``; the last stage sends to the
        destination itself; ``joins`` overrides take precedence.
        """
        override = self.joins.get(ingress)
        if override and dst in override:
            return override[dst]
        chain = self.chains.get(dst, ())
        if ingress in chain:
            i = chain.index(ingress)
            return chain[i + 1] if i + 1 < len(chain) else dst
        return chain[0] if chain else dst


def walk(
    topology: Topology,
    state: ForwardingState,
    src: str,
    target: str,
    scenario: FailureScenario = NO_FAILURE,
) -> List[str]:
    """Follow the forwarding tables from edge node ``src`` towards
    ``target``; return the edge nodes actually reached (usually one).

    Each switch attachment of ``src`` is tried; attachments whose first
    hop immediately bounces back to ``src`` are skipped (they are the
    "wrong side" of a bump-in-the-wire middlebox).  Loops raise
    :class:`ForwardingLoopError`.
    """
    reached: List[str] = []
    for attach in topology.neighbors(src):
        if topology.node(attach).kind != SWITCH:
            if attach == target and scenario.node_ok(attach):
                reached.append(attach)  # direct link (e.g. IDS tunnel)
            continue
        if not scenario.node_ok(attach) or not scenario.link_ok(src, attach):
            continue
        visited = []
        cur = attach
        while True:
            if cur in visited:
                raise ForwardingLoopError(visited + [cur], target)
            visited.append(cur)
            nxt = state.next_hop(cur, target)
            if nxt is None:
                break  # table miss: dropped
            if not scenario.node_ok(nxt) or not scenario.link_ok(cur, nxt):
                break  # next hop is dead: dropped
            if topology.node(nxt).kind != SWITCH:
                if nxt != src:
                    reached.append(nxt)
                # A first-hop bounce back to src means this attachment
                # faces away from the target; either way we are done.
                break
            cur = nxt
    return sorted(set(reached))


def compute_transfer_rules(
    topology: Topology,
    state: ForwardingState,
    steering: Optional[SteeringPolicy] = None,
    scenario: FailureScenario = NO_FAILURE,
) -> Tuple[TransferRule, ...]:
    """Collapse the static datapath into Ω's transfer rules."""
    steering = steering or SteeringPolicy()
    edge = [n.name for n in topology.edge_nodes if scenario.node_ok(n.name)]
    destinations = [n.name for n in topology.hosts if scenario.node_ok(n.name)]
    # Middleboxes are legitimate destinations too (caches, NAT public
    # addresses, VIPs): traffic addressed *to* them is steered directly.
    destinations += [n.name for n in topology.middleboxes if scenario.node_ok(n.name)]

    # raw[(dst, to)] = set of ingress nodes delivered from.
    raw: Dict[Tuple[str, str], set] = {}
    for dst in destinations:
        for src in edge:
            if src == dst:
                continue
            stage = steering.next_stage(src, dst)
            if stage is None or not scenario.node_ok(stage):
                continue  # chain stage dead and no backup: dropped
            for hit in walk(topology, state, src, stage, scenario):
                raw.setdefault((dst, hit), set()).add(src)

    # Compaction pass (VeriFlow-style equivalence classes): merge
    # destinations with identical (ingress-set, target) behaviour.
    grouped: Dict[Tuple[FrozenSet[str], str], set] = {}
    for (dst, to), srcs in raw.items():
        grouped.setdefault((frozenset(srcs), to), set()).add(dst)

    rules = [
        TransferRule.of(HeaderMatch.of(dst=dsts), to=to, from_nodes=srcs)
        for (srcs, to), dsts in sorted(
            grouped.items(), key=lambda kv: (kv[0][1], sorted(kv[1]))
        )
    ]
    return tuple(rules)


def forwarding_equivalence_classes(
    rules: Sequence[TransferRule],
) -> List[FrozenSet[str]]:
    """Group destination addresses with identical forwarding behaviour.

    This is the reporting view of VeriFlow's packet equivalence classes:
    two destinations are equivalent when every rule treats them alike.
    """
    behaviour: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
    for rule in rules:
        for dst in sorted(rule.match.dst or ()):
            behaviour.setdefault(dst, []).append(
                (rule.to, rule.from_nodes or frozenset())
            )
    classes: Dict[tuple, set] = {}
    for dst, acts in behaviour.items():
        classes.setdefault(tuple(sorted(acts)), set()).add(dst)
    return [frozenset(c) for c in classes.values()]


def build_verification_network(
    topology: Topology,
    state: ForwardingState,
    steering: Optional[SteeringPolicy] = None,
    scenario: FailureScenario = NO_FAILURE,
    allow_spoofing: bool = False,
) -> VerificationNetwork:
    """The full collapse: topology + tables + steering -> SMT input."""
    rules = compute_transfer_rules(topology, state, steering, scenario)
    hosts = tuple(
        sorted(n.name for n in topology.hosts if scenario.node_ok(n.name))
    )
    middleboxes = tuple(
        n.model
        for n in topology.middleboxes
        if scenario.node_ok(n.name)
    )
    return VerificationNetwork(
        hosts=hosts,
        middleboxes=middleboxes,
        rules=rules,
        allow_spoofing=allow_spoofing,
    )
