"""Failure scenarios for the static datapath (paper §3.5).

The paper does not model routing reconvergence; instead it accepts "a
topology and forwarding table corresponding to each failure scenario"
and verifies each.  A :class:`FailureScenario` names the failed nodes
and links; forwarding tables are (re)computed against the surviving
topology, and middlebox-level failures additionally surface as FAIL
events in the dynamic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple

__all__ = ["FailureScenario", "NO_FAILURE", "single_failures"]


@dataclass(frozen=True)
class FailureScenario:
    """A set of failed nodes and failed links (as sorted name pairs)."""

    name: str
    failed_nodes: FrozenSet[str] = frozenset()
    failed_links: FrozenSet[Tuple[str, str]] = frozenset()

    @staticmethod
    def of(name: str, nodes=(), links=()) -> "FailureScenario":
        return FailureScenario(
            name=name,
            failed_nodes=frozenset(nodes),
            failed_links=frozenset(tuple(sorted(link)) for link in links),
        )

    def node_ok(self, node: str) -> bool:
        return node not in self.failed_nodes

    def link_ok(self, a: str, b: str) -> bool:
        return tuple(sorted((a, b))) not in self.failed_links

    def __str__(self) -> str:
        return self.name


#: The steady-state scenario.
NO_FAILURE = FailureScenario.of("no-failure")


def single_failures(topology, kinds=("middlebox", "switch")) -> Iterator[FailureScenario]:
    """All single-node failure scenarios for the given node kinds."""
    for node in sorted(topology.graph.nodes):
        if topology.node(node).kind in kinds:
            yield FailureScenario.of(f"fail:{node}", nodes=[node])
