"""Per-switch forwarding tables.

A switch forwards by destination address through an ordered, first-match
table of :class:`ForwardingEntry` (destination set -> next-hop
neighbour).  :func:`shortest_path_tables` computes default tables by
shortest paths over the surviving topology of a failure scenario —
standing in for whatever routing protocol the operator runs — and
scenarios then *patch* tables to model policy routing (pinning traffic
through middlebox chains) or to inject the paper's §5.1 routing
misconfigurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

import networkx as nx

from .failures import NO_FAILURE, FailureScenario
from .topology import SWITCH, Topology

__all__ = ["ForwardingEntry", "ForwardingState", "shortest_path_tables"]


@dataclass(frozen=True)
class ForwardingEntry:
    """First-match entry: packets to ``dsts`` (None = default route)
    leave towards ``next_hop``."""

    dsts: Optional[FrozenSet[str]]
    next_hop: str

    def matches(self, dst: str) -> bool:
        return self.dsts is None or dst in self.dsts


class ForwardingState:
    """The forwarding tables of every switch under one failure scenario."""

    def __init__(self, tables: Dict[str, List[ForwardingEntry]]):
        self.tables = tables

    def next_hop(self, switch: str, dst: str) -> Optional[str]:
        for entry in self.tables.get(switch, ()):
            if entry.matches(dst):
                return entry.next_hop
        return None

    # ------------------------------------------------------------------
    # Patching — how scenarios pin paths and inject misconfigurations.
    # ------------------------------------------------------------------
    def prepend(self, switch: str, dsts: Optional[Iterable[str]], next_hop: str) -> None:
        """Insert a higher-priority entry at ``switch``."""
        entry = ForwardingEntry(
            None if dsts is None else frozenset(dsts), next_hop
        )
        self.tables.setdefault(switch, []).insert(0, entry)

    def remove_entries_to(self, switch: str, next_hop: str) -> int:
        """Delete all entries at ``switch`` pointing to ``next_hop``.
        Returns how many were removed (misconfiguration injection)."""
        table = self.tables.get(switch, [])
        kept = [e for e in table if e.next_hop != next_hop]
        removed = len(table) - len(kept)
        self.tables[switch] = kept
        return removed

    def copy(self) -> "ForwardingState":
        return ForwardingState({s: list(t) for s, t in self.tables.items()})


def shortest_path_tables(
    topology: Topology,
    scenario: FailureScenario = NO_FAILURE,
) -> ForwardingState:
    """Destination-based shortest-path tables over surviving elements.

    Each switch gets one entry per edge-node destination (host or
    middlebox), pointing along a shortest surviving path.  Paths never
    cut *through* hosts or middleboxes — only switches forward.  This
    stands in for the operator's routing protocol; policy steering
    through middlebox chains happens at transfer-function level
    (:mod:`repro.network.transfer`).
    """
    alive = nx.Graph()
    for node in topology.graph.nodes:
        if scenario.node_ok(node):
            alive.add_node(node)
    for a, b in topology.graph.edges:
        if scenario.node_ok(a) and scenario.node_ok(b) and scenario.link_ok(a, b):
            alive.add_edge(a, b)

    non_switch = [n for n in alive.nodes if topology.node(n).kind != SWITCH]
    tables: Dict[str, List[ForwardingEntry]] = {
        n.name: [] for n in topology.switches if scenario.node_ok(n.name)
    }

    for dst in non_switch:
        # Shortest paths to dst that do not route through other edge nodes.
        pruned = alive.copy()
        for n in non_switch:
            if n != dst:
                pruned.remove_node(n)
        if dst not in pruned:
            continue
        paths = nx.single_source_shortest_path(pruned, dst)
        for switch in tables:
            path = paths.get(switch)
            if path is None or len(path) < 2:
                continue
            next_hop = path[-2]  # path is dst -> ... -> switch
            tables[switch].append(ForwardingEntry(frozenset({dst}), next_hop))

    return ForwardingState(tables)
