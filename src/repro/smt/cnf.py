"""Tseitin/Plaisted-Greenbaum transformation from term DAGs to CNF.

The converter is incremental: a single :class:`CnfConverter` is shared
by all :meth:`Solver.add` calls so that subterms common to several
assertions are encoded once.  Constructors in :mod:`repro.smt.terms`
normalise every boolean connective to ``and`` / ``or`` / ``not`` over
variables and constants, so those are the only kinds handled here
(enum equalities are lowered first by :mod:`repro.smt.encode`).

Encoding is *polarity-aware* (Plaisted-Greenbaum): a definition clause
set is emitted only for the directions in which a subterm is actually
used, roughly halving the clause count of the network formulas.  The
:meth:`literal` entry point (used for solver assumptions) requests both
polarities, so assumption literals remain fully equivalent to their
terms.

Variable allocation is *stable across solver scopes*: definition
clauses only ever constrain a subterm's fresh Tseitin variable relative
to its arguments' variables, so they are valid in every scope and are
added to the solver permanently (outside any ``push()`` scope).  Only
the top-level unit clause of :meth:`assert_term` is scoped.  Popping a
scope therefore never invalidates the memo tables: re-encoding a term
seen in any earlier scope reuses its CNF — same variables, no new
clauses — which is what keeps warm incremental solving cheap.

Permanence also matters to the solver's clause arena: permanent
definitions form the long-lived clause population that inprocessing
(subsumption / self-subsuming resolution) is allowed to tighten, and
stable variable numbering means a warm solver's learned clauses keep
referring to the same subterms across every scope and deepening step.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .sat import SatSolver
from .terms import FALSE, TRUE, Term

__all__ = ["CnfConverter"]

POS = 1
NEG = 2
BOTH = POS | NEG


class CnfConverter:
    """Encodes boolean terms into a :class:`SatSolver`, memoising nodes."""

    def __init__(self, sat: SatSolver):
        self.sat = sat
        self._lit_of: Dict[Term, int] = {}
        self._done: Dict[Term, int] = {}  # polarity mask already emitted
        self._true_var: int = 0  # allocated on demand

    # ------------------------------------------------------------------
    def _const_true(self) -> int:
        if self._true_var == 0:
            self._true_var = self.sat.new_var()
            self.sat.add_clause([self._true_var], permanent=True)
        return self._true_var

    def _lit(self, node: Term) -> int:
        """The (possibly fresh) literal naming ``node``; no clauses."""
        lit = self._lit_of.get(node)
        if lit is not None:
            return lit
        kind = node.kind
        if kind == "true":
            lit = self._const_true()
        elif kind == "false":
            lit = -self._const_true()
        elif kind == "var":
            lit = self.sat.new_var()
        elif kind == "not":
            lit = -self._lit(node.args[0])
        elif kind in ("and", "or"):
            lit = self.sat.new_var()
        else:
            raise TypeError(
                f"cannot CNF-encode term kind {kind!r}; "
                "enum terms must be lowered by encode.lower() first"
            )
        self._lit_of[node] = lit
        return lit

    def _encode(self, root: Term, polarity: int) -> None:
        """Emit definition clauses for ``root`` in the given polarity."""
        stack: List[Tuple[Term, int]] = [(root, polarity)]
        while stack:
            node, pol = stack.pop()
            have = self._done.get(node, 0)
            need = pol & ~have
            if not need:
                continue
            self._done[node] = have | need
            kind = node.kind
            if kind in ("true", "false", "var"):
                continue
            if kind == "not":
                flipped = 0
                if need & POS:
                    flipped |= NEG
                if need & NEG:
                    flipped |= POS
                stack.append((node.args[0], flipped))
                continue
            v = self._lit(node)
            lit_of = self._lit
            add = self.sat.add_clause
            arg_lits = [lit_of(a) for a in node.args]
            if kind == "and":
                if need & POS:  # v -> each arg
                    for lit in arg_lits:
                        add([-v, lit], permanent=True)
                if need & NEG:  # all args -> v
                    add([v] + [-lit for lit in arg_lits], permanent=True)
            else:  # or
                if need & POS:  # v -> some arg
                    add([-v] + arg_lits, permanent=True)
                if need & NEG:  # each arg -> v
                    for lit in arg_lits:
                        add([v, -lit], permanent=True)
            for a in node.args:
                stack.append((a, need))

    # ------------------------------------------------------------------
    def literal(self, term: Term) -> int:
        """A literal fully equivalent to ``term`` (both polarities).

        Use for assumptions, where the literal constrains the term both
        ways."""
        self._encode(term, BOTH)
        return self._lit(term)

    def assert_term(self, term: Term, permanent: bool = False) -> None:
        """Assert ``term`` (it must hold in every model).

        In a solver scope the assertion is retracted by the matching
        ``pop()``; ``permanent=True`` asserts it in the root scope
        (used for enum-domain side conditions, which define what an
        enum variable *is* and must outlive any scope that first
        mentioned it).
        """
        if term is TRUE:
            return
        if term is FALSE:
            self.sat.add_clause([-self._const_true()], permanent=permanent)
            return
        self._encode(term, POS)
        self.sat.add_clause([self._lit(term)], permanent=permanent)

    def var_literal(self, term: Term) -> int:
        """The literal of an already-encoded term, if any."""
        lit = self._lit_of.get(term)
        if lit is None:
            raise KeyError(f"term not encoded: {term!r}")
        return lit
