"""Term utilities: substitution, concrete evaluation, cofactoring.

The constructors in :mod:`repro.smt.terms` already perform constant
folding and flattening; the helpers here are used by slicing (to
specialise a network formula to a concrete failure scenario), by the
explicit-state baseline (to evaluate middlebox guards concretely) and
by tests.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .terms import And, Eq, Ite, Not, Or, Term, iter_dag

__all__ = ["substitute", "evaluate", "is_constant"]


def substitute(term: Term, mapping: Mapping[Term, Term]) -> Term:
    """Replace variables (or arbitrary subterms) per ``mapping``.

    Replacement terms must have the same sort as what they replace.
    Rebuilding goes through the smart constructors, so substituting
    constants simplifies the result (this is how failure scenarios are
    specialised into a network formula).
    """
    for src, dst in mapping.items():
        if src.sort is not dst.sort:
            raise TypeError(
                f"substitute: sort mismatch {src.sort.name} -> {dst.sort.name}"
            )
    rebuilt: Dict[Term, Term] = {}
    for node in iter_dag(term):
        replacement = mapping.get(node)
        if replacement is not None:
            rebuilt[node] = replacement
            continue
        if not node.args:
            rebuilt[node] = node
            continue
        new_args = [rebuilt[a] for a in node.args]
        if all(x is y for x, y in zip(new_args, node.args)):
            rebuilt[node] = node
            continue
        kind = node.kind
        if kind == "not":
            rebuilt[node] = Not(new_args[0])
        elif kind == "and":
            rebuilt[node] = And(*new_args)
        elif kind == "or":
            rebuilt[node] = Or(*new_args)
        elif kind == "eq":
            rebuilt[node] = Eq(new_args[0], new_args[1])
        elif kind == "ite":
            rebuilt[node] = Ite(new_args[0], new_args[1], new_args[2])
        else:  # pragma: no cover - vars/consts have no args
            raise TypeError(f"cannot rebuild term kind {kind!r}")
    return rebuilt[term]


def evaluate(term: Term, env: Mapping[Term, object]):
    """Evaluate a term under a concrete environment.

    ``env`` maps variable terms to Python values (``bool`` for boolean
    variables, enum values for enum variables).  Raises ``KeyError`` for
    variables missing from the environment.
    """
    values: Dict[Term, object] = {}
    for node in iter_dag(term):
        kind = node.kind
        if kind == "true":
            values[node] = True
        elif kind == "false":
            values[node] = False
        elif kind in ("var", "evar"):
            if node not in env:
                raise KeyError(f"no value for variable {node.payload!r}")
            values[node] = env[node]
        elif kind == "econst":
            values[node] = node.payload
        elif kind == "not":
            values[node] = not values[node.args[0]]
        elif kind == "and":
            values[node] = all(values[a] for a in node.args)
        elif kind == "or":
            values[node] = any(values[a] for a in node.args)
        elif kind == "eq":
            values[node] = values[node.args[0]] == values[node.args[1]]
        elif kind == "ite":
            values[node] = (
                values[node.args[1]] if values[node.args[0]] else values[node.args[2]]
            )
        else:  # pragma: no cover
            raise TypeError(f"cannot evaluate term kind {kind!r}")
    return values[term]


def is_constant(term: Term) -> bool:
    """True when the term contains no variables."""
    return all(node.kind not in ("var", "evar") for node in iter_dag(term))
