/* satcore.c — the compiled twin of the arena CDCL core in sat.py.
 *
 * Same design as the pure-Python solver (clause arena, two-watched
 * literals with blockers, dedicated binary watch lists, VSIDS with
 * phase saving, Luby restarts, assumption solving with complete
 * failed-assumption cores, budget-capped inprocessing), implemented
 * in C99 for raw single-core speed.  Built on demand by
 * repro/smt/_native.py with the system C compiler and loaded through
 * ctypes; when no compiler is available the Python arena solver runs
 * instead, with identical semantics.
 *
 * The ABI is deliberately tiny and int-only (see the `sat_` exports
 * at the bottom): the Python wrapper keeps ownership of everything
 * stateful above the CNF level — scope selectors, DIMACS conversion,
 * stats dict assembly, selector filtering of cores.
 *
 * Clause layout in the arena: two header words then the literals.
 *   arena[cref-2]  activity (float bits; learnt clauses only use it)
 *   arena[cref-1]  size << 2 | deleted << 1 | learnt
 *   arena[cref..]  literals (var v -> 2v positive, 2v+1 negative)
 * A clause reference is the index of its first literal; reason slot 0
 * means "no reason" (index 0/1 are sentinels).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define SAT_TRUE 1
#define SAT_FALSE 0
#define SAT_UNKNOWN 2

#define HSIZE(h) ((h) >> 2)
#define HDEL(h) ((h) & 2)
#define HLEARNT(h) ((h) & 1)
#define MKHEADER(size, learnt) (((size) << 2) | (learnt))

typedef struct {
    int32_t *d;
    int32_t n, cap;
} IVec;

typedef struct {
    int32_t cref;
    int32_t aux; /* blocker (long watches) / other literal (binary) */
} Watch;

typedef struct {
    Watch *d;
    int32_t n, cap;
} WVec;

static void iv_push(IVec *v, int32_t x) {
    if (v->n == v->cap) {
        v->cap = v->cap ? v->cap * 2 : 8;
        v->d = (int32_t *)realloc(v->d, (size_t)v->cap * sizeof(int32_t));
    }
    v->d[v->n++] = x;
}

static void wv_push(WVec *v, int32_t cref, int32_t aux) {
    if (v->n == v->cap) {
        v->cap = v->cap ? v->cap * 2 : 4;
        v->d = (Watch *)realloc(v->d, (size_t)v->cap * sizeof(Watch));
    }
    v->d[v->n].cref = cref;
    v->d[v->n].aux = aux;
    v->n++;
}

typedef struct Sat {
    int32_t nvars;
    int32_t var_cap; /* allocated size of per-var arrays */

    int32_t *arena;
    int64_t arena_n, arena_cap;
    IVec clauses, learnts; /* live crefs */
    int64_t garbage;

    WVec *watches;  /* per literal: long-clause watches */
    WVec *bwatches; /* per literal: binary-clause watches */
    int8_t *vals;   /* per literal: 1 true / 0 false / -1 unassigned */
    int32_t *levels;
    int32_t *reasons;
    int8_t *phase;
    int8_t *seen;
    int8_t *selector; /* scope selector vars: never subsumers */
    int8_t *model;    /* per var, snapshot of the last sat answer */

    double *activity;
    double var_inc, var_decay, cla_inc, cla_decay;
    int32_t *heap; /* indexed max-heap on activity */
    int32_t *hpos; /* var -> heap index, -1 when absent */
    int32_t heap_n;

    int32_t *trail;
    int32_t trail_n;
    int32_t *trail_lim;
    int32_t tl_n, tl_cap;
    int32_t qhead;

    int ok;
    int has_model;

    int64_t conflicts, decisions, propagations, restarts;
    int64_t learned, subsumed, strengthened;
    int64_t simplify_at, simplify_ticks;

    IVec core; /* failed assumptions (internal literal form) */

    /* analysis scratch */
    IVec tmp_learnt, tmp_clear, tmp_stack, tmp_units;
} Sat;

/* ------------------------------------------------------------------ */
/* Heap: max-heap on var activity with position index                  */
/* ------------------------------------------------------------------ */
static void heap_up(Sat *s, int32_t i) {
    int32_t var = s->heap[i];
    double act = s->activity[var];
    while (i > 0) {
        int32_t p = (i - 1) >> 1;
        int32_t pv = s->heap[p];
        if (s->activity[pv] >= act)
            break;
        s->heap[i] = pv;
        s->hpos[pv] = i;
        i = p;
    }
    s->heap[i] = var;
    s->hpos[var] = i;
}

static void heap_down(Sat *s, int32_t i) {
    int32_t var = s->heap[i];
    double act = s->activity[var];
    int32_t n = s->heap_n;
    for (;;) {
        int32_t c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n && s->activity[s->heap[c + 1]] > s->activity[s->heap[c]])
            c++;
        if (s->activity[s->heap[c]] <= act)
            break;
        s->heap[i] = s->heap[c];
        s->hpos[s->heap[c]] = i;
        i = c;
    }
    s->heap[i] = var;
    s->hpos[var] = i;
}

static void heap_insert(Sat *s, int32_t var) {
    if (s->hpos[var] >= 0)
        return;
    s->heap[s->heap_n] = var;
    s->hpos[var] = s->heap_n;
    s->heap_n++;
    heap_up(s, s->heap_n - 1);
}

static int32_t heap_pop(Sat *s) {
    int32_t top = s->heap[0];
    s->hpos[top] = -1;
    s->heap_n--;
    if (s->heap_n > 0) {
        s->heap[0] = s->heap[s->heap_n];
        s->hpos[s->heap[0]] = 0;
        heap_down(s, 0);
    }
    return top;
}

/* ------------------------------------------------------------------ */
/* Construction                                                        */
/* ------------------------------------------------------------------ */
Sat *sat_new(void) {
    Sat *s = (Sat *)calloc(1, sizeof(Sat));
    s->arena_cap = 1024;
    s->arena = (int32_t *)malloc((size_t)s->arena_cap * sizeof(int32_t));
    s->arena[0] = 0;
    s->arena[1] = 0;
    s->arena_n = 2; /* sentinel words so cref 0 means "no reason" */
    s->var_cap = 0;
    s->ok = 1;
    s->var_inc = 1.0;
    s->var_decay = 0.95;
    s->cla_inc = 1.0;
    s->cla_decay = 0.999;
    s->simplify_at = 2000;
    s->simplify_ticks = 400000;
    return s;
}

void sat_free(Sat *s) {
    if (!s)
        return;
    int32_t nlits = 2 * s->var_cap + 2;
    for (int32_t i = 0; i < nlits && s->watches; i++) {
        free(s->watches[i].d);
        free(s->bwatches[i].d);
    }
    free(s->watches);
    free(s->bwatches);
    free(s->arena);
    free(s->clauses.d);
    free(s->learnts.d);
    free(s->vals);
    free(s->levels);
    free(s->reasons);
    free(s->phase);
    free(s->seen);
    free(s->selector);
    free(s->model);
    free(s->activity);
    free(s->heap);
    free(s->hpos);
    free(s->trail);
    free(s->trail_lim);
    free(s->core.d);
    free(s->tmp_learnt.d);
    free(s->tmp_clear.d);
    free(s->tmp_stack.d);
    free(s->tmp_units.d);
    free(s);
}

int32_t sat_new_var(Sat *s) {
    if (s->nvars + 1 > s->var_cap) {
        int32_t cap = s->var_cap ? s->var_cap * 2 : 64;
        int32_t nlits = 2 * cap + 2;
        int32_t old_nlits = s->var_cap ? 2 * s->var_cap + 2 : 0;
        s->watches = (WVec *)realloc(s->watches, (size_t)nlits * sizeof(WVec));
        s->bwatches = (WVec *)realloc(s->bwatches, (size_t)nlits * sizeof(WVec));
        memset(s->watches + old_nlits, 0, (size_t)(nlits - old_nlits) * sizeof(WVec));
        memset(s->bwatches + old_nlits, 0, (size_t)(nlits - old_nlits) * sizeof(WVec));
        s->vals = (int8_t *)realloc(s->vals, (size_t)nlits);
        s->levels = (int32_t *)realloc(s->levels, (size_t)(cap + 1) * 4);
        s->reasons = (int32_t *)realloc(s->reasons, (size_t)(cap + 1) * 4);
        s->phase = (int8_t *)realloc(s->phase, (size_t)(cap + 1));
        s->seen = (int8_t *)realloc(s->seen, (size_t)(cap + 1));
        s->selector = (int8_t *)realloc(s->selector, (size_t)(cap + 1));
        s->model = (int8_t *)realloc(s->model, (size_t)(cap + 1));
        s->activity = (double *)realloc(s->activity, (size_t)(cap + 1) * 8);
        s->heap = (int32_t *)realloc(s->heap, (size_t)(cap + 1) * 4);
        s->hpos = (int32_t *)realloc(s->hpos, (size_t)(cap + 1) * 4);
        s->trail = (int32_t *)realloc(s->trail, (size_t)(cap + 1) * 4);
        s->var_cap = cap;
    }
    s->nvars++;
    int32_t v = s->nvars;
    s->vals[2 * v] = -1;
    s->vals[2 * v + 1] = -1;
    s->levels[v] = 0;
    s->reasons[v] = 0;
    s->phase[v] = 0;
    s->seen[v] = 0;
    s->selector[v] = 0;
    s->model[v] = -1;
    s->activity[v] = 0.0;
    s->hpos[v] = -1;
    heap_insert(s, v);
    return v;
}

void sat_mark_selector(Sat *s, int32_t var) {
    if (var >= 1 && var <= s->nvars)
        s->selector[var] = 1;
}

/* ------------------------------------------------------------------ */
/* Clause storage                                                      */
/* ------------------------------------------------------------------ */
static int32_t new_clause(Sat *s, const int32_t *lits, int32_t n, int learnt) {
    if (s->arena_n + n + 2 > s->arena_cap) {
        while (s->arena_n + n + 2 > s->arena_cap)
            s->arena_cap *= 2;
        s->arena = (int32_t *)realloc(s->arena, (size_t)s->arena_cap * 4);
    }
    s->arena[s->arena_n++] = 0; /* activity bits */
    s->arena[s->arena_n++] = MKHEADER(n, learnt);
    int32_t cref = (int32_t)s->arena_n;
    memcpy(s->arena + s->arena_n, lits, (size_t)n * 4);
    s->arena_n += n;
    return cref;
}

static void attach(Sat *s, int32_t cref) {
    int32_t *arena = s->arena;
    int32_t size = HSIZE(arena[cref - 1]);
    int32_t l0 = arena[cref], l1 = arena[cref + 1];
    if (size == 2) {
        wv_push(&s->bwatches[l0 ^ 1], cref, l1);
        wv_push(&s->bwatches[l1 ^ 1], cref, l0);
    } else {
        wv_push(&s->watches[l0 ^ 1], cref, l1);
        wv_push(&s->watches[l1 ^ 1], cref, l0);
    }
}

static void rebuild_watches(Sat *s) {
    int32_t nlits = 2 * s->nvars + 2;
    for (int32_t i = 0; i < nlits; i++) {
        s->watches[i].n = 0;
        s->bwatches[i].n = 0;
    }
    for (int32_t k = 0; k < s->clauses.n; k++)
        if (HSIZE(s->arena[s->clauses.d[k] - 1]) >= 2)
            attach(s, s->clauses.d[k]);
    for (int32_t k = 0; k < s->learnts.n; k++)
        if (HSIZE(s->arena[s->learnts.d[k] - 1]) >= 2)
            attach(s, s->learnts.d[k]);
}

/* Drop marked-deleted entries from every watch list. */
static void sweep_watches(Sat *s) {
    int32_t nlits = 2 * s->nvars + 2;
    int32_t *arena = s->arena;
    for (int32_t i = 0; i < nlits; i++) {
        WVec *w = &s->watches[i];
        int32_t j = 0;
        for (int32_t k = 0; k < w->n; k++)
            if (!HDEL(arena[w->d[k].cref - 1]))
                w->d[j++] = w->d[k];
        w->n = j;
        w = &s->bwatches[i];
        j = 0;
        for (int32_t k = 0; k < w->n; k++)
            if (!HDEL(arena[w->d[k].cref - 1]))
                w->d[j++] = w->d[k];
        w->n = j;
    }
}

static void mark_deleted(Sat *s, int32_t cref) {
    s->arena[cref - 1] |= 2;
    s->garbage += HSIZE(s->arena[cref - 1]) + 2;
}

static void compact_arena(Sat *s) {
    /* Only sound at decision level 0: reasons are dropped wholesale. */
    int64_t need = s->arena_n - s->garbage;
    int32_t *na = (int32_t *)malloc((size_t)(need > 2 ? need : 2) * 4);
    int64_t n = 2;
    na[0] = 0;
    na[1] = 0;
    IVec *stores[2] = {&s->clauses, &s->learnts};
    for (int si = 0; si < 2; si++) {
        IVec *refs = stores[si];
        for (int32_t k = 0; k < refs->n; k++) {
            int32_t cref = refs->d[k];
            int32_t header = s->arena[cref - 1];
            int32_t size = HSIZE(header);
            na[n++] = s->arena[cref - 2];
            na[n++] = header;
            memcpy(na + n, s->arena + cref, (size_t)size * 4);
            refs->d[k] = (int32_t)n;
            n += size;
        }
    }
    free(s->arena);
    s->arena = na;
    s->arena_n = n;
    s->arena_cap = n > 2 ? n : 2;
    s->garbage = 0;
    memset(s->reasons, 0, (size_t)(s->nvars + 1) * 4);
    rebuild_watches(s);
}

/* ------------------------------------------------------------------ */
/* Assignment and propagation                                          */
/* ------------------------------------------------------------------ */
static int enqueue(Sat *s, int32_t lit, int32_t reason) {
    int8_t v = s->vals[lit];
    if (v >= 0)
        return v > 0;
    s->vals[lit] = 1;
    s->vals[lit ^ 1] = 0;
    int32_t var = lit >> 1;
    s->levels[var] = s->tl_n;
    s->reasons[var] = reason;
    s->trail[s->trail_n++] = lit;
    return 1;
}

static int32_t propagate(Sat *s) {
    WVec *watches = s->watches;
    WVec *bwatches = s->bwatches;
    int8_t *vals = s->vals;
    int32_t *arena = s->arena;
    int32_t *trail = s->trail;
    int32_t *levels = s->levels;
    int32_t *reasons = s->reasons;
    int32_t level = s->tl_n;
    int32_t qhead = s->qhead;
    int64_t nprops = 0;

    while (qhead < s->trail_n) {
        int32_t lit = trail[qhead++];
        nprops++;
        WVec *bw = &bwatches[lit];
        Watch *bd = bw->d;
        for (int32_t k = 0; k < bw->n; k++) {
            int32_t other = bd[k].aux;
            int8_t v = vals[other];
            if (v > 0)
                continue;
            if (v == 0) { /* conflict */
                s->qhead = s->trail_n;
                s->propagations += nprops;
                return bd[k].cref;
            }
            vals[other] = 1;
            vals[other ^ 1] = 0;
            int32_t bvar = other >> 1;
            levels[bvar] = level;
            reasons[bvar] = bd[k].cref;
            trail[s->trail_n++] = other;
        }
        WVec *wv = &watches[lit];
        if (!wv->n)
            continue;
        int32_t falsified = lit ^ 1;
        Watch *wd = wv->d;
        int32_t i = 0, j = 0, n = wv->n;
        while (i < n) {
            Watch w = wd[i++];
            if (vals[w.aux] > 0) { /* blocker satisfies the clause */
                wd[j++] = w;
                continue;
            }
            int32_t cref = w.cref;
            int32_t first = arena[cref];
            if (first == falsified) {
                first = arena[cref + 1];
                arena[cref] = first;
                arena[cref + 1] = falsified;
            }
            int8_t v = vals[first];
            if (v > 0) { /* the other watch is already true */
                wd[j].cref = cref;
                wd[j].aux = first;
                j++;
                continue;
            }
            int32_t end = cref + HSIZE(arena[cref - 1]);
            int32_t k = cref + 2;
            while (k < end && vals[arena[k]] == 0)
                k++;
            if (k < end) { /* found a new literal to watch */
                int32_t lk = arena[k];
                arena[cref + 1] = lk;
                arena[k] = falsified;
                wv_push(&watches[lk ^ 1], cref, first);
                wd = wv->d; /* wv_push may not touch wv, but stay safe */
                continue;
            }
            /* Clause is unit or conflicting. */
            wd[j].cref = cref;
            wd[j].aux = first;
            j++;
            if (v == 0) { /* conflict */
                while (i < n)
                    wd[j++] = wd[i++];
                wv->n = j;
                s->qhead = s->trail_n;
                s->propagations += nprops;
                return cref;
            }
            vals[first] = 1;
            vals[first ^ 1] = 0;
            int32_t fvar = first >> 1;
            levels[fvar] = level;
            reasons[fvar] = cref;
            trail[s->trail_n++] = first;
        }
        wv->n = j;
    }
    s->qhead = qhead;
    s->propagations += nprops;
    return 0;
}

static void backtrack(Sat *s, int32_t level) {
    if (s->tl_n <= level)
        return;
    int32_t bound = s->trail_lim[level];
    for (int32_t i = s->trail_n - 1; i >= bound; i--) {
        int32_t lit = s->trail[i];
        int32_t var = lit >> 1;
        s->phase[var] = (int8_t)(!(lit & 1));
        s->vals[lit] = -1;
        s->vals[lit ^ 1] = -1;
        s->reasons[var] = 0;
        heap_insert(s, var);
    }
    s->trail_n = bound;
    s->tl_n = level;
    s->qhead = bound;
}

/* ------------------------------------------------------------------ */
/* VSIDS                                                               */
/* ------------------------------------------------------------------ */
static void rescale_var_activity(Sat *s) {
    for (int32_t v = 1; v <= s->nvars; v++)
        s->activity[v] *= 1e-100;
    s->var_inc *= 1e-100;
}

static void rescale_cla_activity(Sat *s) {
    for (int32_t k = 0; k < s->learnts.n; k++) {
        int32_t cref = s->learnts.d[k];
        float a;
        memcpy(&a, &s->arena[cref - 2], 4);
        a *= 1e-20f;
        memcpy(&s->arena[cref - 2], &a, 4);
    }
    s->cla_inc *= 1e-20;
}

static void bump_var(Sat *s, int32_t var) {
    double act = s->activity[var] + s->var_inc;
    s->activity[var] = act;
    if (act > 1e100) {
        rescale_var_activity(s);
    }
    if (s->hpos[var] >= 0)
        heap_up(s, s->hpos[var]);
}

static int32_t pick_branch_var(Sat *s) {
    while (s->heap_n) {
        int32_t var = heap_pop(s);
        if (s->vals[var << 1] < 0)
            return var;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Conflict analysis (first UIP) with recursive minimisation           */
/* ------------------------------------------------------------------ */
static int lit_redundant(Sat *s, int32_t lit, uint32_t levmask) {
    int32_t *arena = s->arena;
    int32_t *levels = s->levels;
    int32_t *reasons = s->reasons;
    int8_t *seen = s->seen;
    IVec *stack = &s->tmp_stack;
    stack->n = 0;
    iv_push(stack, lit);
    int32_t marked_from = s->tmp_clear.n;
    while (stack->n) {
        int32_t p = stack->d[--stack->n];
        int32_t cref = reasons[p >> 1];
        if (!cref) {
            for (int32_t k = marked_from; k < s->tmp_clear.n; k++)
                seen[s->tmp_clear.d[k]] = 0;
            s->tmp_clear.n = marked_from;
            return 0;
        }
        int32_t pvar = p >> 1;
        int32_t size = HSIZE(arena[cref - 1]);
        for (int32_t k = cref; k < cref + size; k++) {
            int32_t q = arena[k];
            int32_t var = q >> 1;
            if (var == pvar || seen[var])
                continue;
            int32_t lv = levels[var];
            if (lv > 0) {
                if (!((1u << (lv & 31)) & levmask) || !reasons[var]) {
                    for (int32_t m = marked_from; m < s->tmp_clear.n; m++)
                        seen[s->tmp_clear.d[m]] = 0;
                    s->tmp_clear.n = marked_from;
                    return 0;
                }
                seen[var] = 1;
                iv_push(&s->tmp_clear, var);
                iv_push(stack, q);
            }
        }
    }
    return 1;
}

/* Fills s->tmp_learnt with the learnt clause; returns backtrack level. */
static int32_t analyze(Sat *s, int32_t conflict) {
    int32_t *arena = s->arena;
    int32_t *levels = s->levels;
    int32_t *reasons = s->reasons;
    int32_t *trail = s->trail;
    int8_t *seen = s->seen;
    IVec *learnt = &s->tmp_learnt;
    IVec *to_clear = &s->tmp_clear;
    learnt->n = 0;
    to_clear->n = 0;
    iv_push(learnt, 0); /* placeholder for the asserting literal */

    int32_t counter = 0;
    int32_t lit = -2; /* no skip on the conflict round */
    int32_t cref = conflict;
    int32_t index = s->trail_n;
    int32_t cur_level = s->tl_n;

    for (;;) {
        int32_t header = arena[cref - 1];
        if (HLEARNT(header)) {
            float a;
            memcpy(&a, &arena[cref - 2], 4);
            a += (float)s->cla_inc;
            memcpy(&arena[cref - 2], &a, 4);
            if (a > 1e20f)
                rescale_cla_activity(s);
        }
        int32_t size = HSIZE(header);
        int32_t skip_var = lit >> 1;
        for (int32_t k = cref; k < cref + size; k++) {
            int32_t q = arena[k];
            int32_t var = q >> 1;
            if (var == skip_var || seen[var])
                continue;
            int32_t lv = levels[var];
            if (lv > 0) {
                seen[var] = 1;
                iv_push(to_clear, var);
                bump_var(s, var);
                if (lv == cur_level)
                    counter++;
                else
                    iv_push(learnt, q);
            }
        }
        for (;;) {
            index--;
            lit = trail[index];
            if (seen[lit >> 1])
                break;
        }
        counter--;
        if (counter == 0)
            break;
        cref = reasons[lit >> 1];
        seen[lit >> 1] = 0;
    }
    learnt->d[0] = lit ^ 1;

    if (learnt->n > 1) { /* recursive minimisation */
        uint32_t levmask = 0;
        for (int32_t k = 1; k < learnt->n; k++)
            levmask |= 1u << (levels[learnt->d[k] >> 1] & 31);
        int32_t j = 1;
        for (int32_t k = 1; k < learnt->n; k++) {
            int32_t q = learnt->d[k];
            if (!reasons[q >> 1] || !lit_redundant(s, q, levmask))
                learnt->d[j++] = q;
        }
        learnt->n = j;
    }

    for (int32_t k = 0; k < to_clear->n; k++)
        seen[to_clear->d[k]] = 0;
    to_clear->n = 0;

    int32_t bt_level = 0;
    if (learnt->n > 1) {
        int32_t max_i = 1;
        for (int32_t k = 2; k < learnt->n; k++)
            if (levels[learnt->d[k] >> 1] > levels[learnt->d[max_i] >> 1])
                max_i = k;
        int32_t tmp = learnt->d[1];
        learnt->d[1] = learnt->d[max_i];
        learnt->d[max_i] = tmp;
        bt_level = levels[learnt->d[1] >> 1];
    }
    return bt_level;
}

/* The assumptions implying the (falsified) seed variables' values:
 * walk the implication graph from the seeds back to assumption
 * decisions.  Covers both final-conflict shapes.                      */
static void final_core(Sat *s, const int32_t *seed_vars, int32_t nseeds,
                       const int32_t *assume, int32_t nassume) {
    int32_t *arena = s->arena;
    int32_t *levels = s->levels;
    int8_t *seen = s->seen;
    IVec *clear = &s->tmp_clear;
    clear->n = 0;
    s->core.n = 0;
    for (int32_t k = 0; k < nseeds; k++) {
        if (!seen[seed_vars[k]]) {
            seen[seed_vars[k]] = 1;
            iv_push(clear, seed_vars[k]);
        }
    }
    for (int32_t i = s->trail_n - 1; i >= 0; i--) {
        int32_t var = s->trail[i] >> 1;
        if (!seen[var])
            continue;
        int32_t cref = s->reasons[var];
        if (cref) {
            int32_t size = HSIZE(arena[cref - 1]);
            for (int32_t k = cref; k < cref + size; k++) {
                int32_t qv = arena[k] >> 1;
                if (levels[qv] > 0 && !seen[qv]) {
                    seen[qv] = 1;
                    iv_push(clear, qv);
                }
            }
        }
    }
    /* Emit implicated assumptions in the order they were passed. */
    for (int32_t k = 0; k < nassume; k++)
        if (seen[assume[k] >> 1])
            iv_push(&s->core, assume[k]);
    for (int32_t k = 0; k < clear->n; k++)
        seen[clear->d[k]] = 0;
    clear->n = 0;
}

/* ------------------------------------------------------------------ */
/* Learned-clause database reduction                                   */
/* ------------------------------------------------------------------ */
typedef struct {
    float act;
    int32_t cref;
} ActRef;

static int actref_cmp(const void *a, const void *b) {
    float d = ((const ActRef *)a)->act - ((const ActRef *)b)->act;
    return d < 0 ? -1 : d > 0 ? 1 : 0;
}

static void reduce_db(Sat *s) {
    int32_t n = s->learnts.n;
    if (!n)
        return;
    ActRef *order = (ActRef *)malloc((size_t)n * sizeof(ActRef));
    for (int32_t k = 0; k < n; k++) {
        float a;
        memcpy(&a, &s->arena[s->learnts.d[k] - 2], 4);
        order[k].act = a;
        order[k].cref = s->learnts.d[k];
    }
    qsort(order, (size_t)n, sizeof(ActRef), actref_cmp);
    /* Reasons of trail literals are locked. */
    for (int32_t i = 0; i < s->trail_n; i++) {
        int32_t cref = s->reasons[s->trail[i] >> 1];
        if (cref && HLEARNT(s->arena[cref - 1]))
            s->arena[cref - 1] |= (int32_t)1 << 30; /* lock bit, transient */
    }
    int32_t half = n / 2;
    int32_t removed = 0;
    for (int32_t k = 0; k < half; k++) {
        int32_t cref = order[k].cref;
        int32_t header = s->arena[cref - 1];
        if ((header & ((int32_t)1 << 30)) || HSIZE(header & ~((int32_t)1 << 30)) <= 2)
            continue;
        mark_deleted(s, cref);
        removed++;
    }
    for (int32_t i = 0; i < s->trail_n; i++) {
        int32_t cref = s->reasons[s->trail[i] >> 1];
        if (cref)
            s->arena[cref - 1] &= ~((int32_t)1 << 30);
    }
    free(order);
    if (!removed)
        return;
    int32_t j = 0;
    for (int32_t k = 0; k < n; k++)
        if (!HDEL(s->arena[s->learnts.d[k] - 1]))
            s->learnts.d[j++] = s->learnts.d[k];
    s->learnts.n = j;
    /* Binaries are never reduced, so only long watches need sweeping. */
    int32_t nlits = 2 * s->nvars + 2;
    for (int32_t i = 0; i < nlits; i++) {
        WVec *w = &s->watches[i];
        int32_t jj = 0;
        for (int32_t k = 0; k < w->n; k++)
            if (!HDEL(s->arena[w->d[k].cref - 1]))
                w->d[jj++] = w->d[k];
        w->n = jj;
    }
}

/* ------------------------------------------------------------------ */
/* Inprocessing (at decision level 0, between incremental calls)       */
/* ------------------------------------------------------------------ */
typedef struct {
    int32_t size;
    int32_t cref;
} SizeRef;

static int sizeref_cmp(const void *a, const void *b) {
    return ((const SizeRef *)a)->size - ((const SizeRef *)b)->size;
}

static void simplify(Sat *s) {
    int32_t *arena = s->arena;
    int8_t *vals = s->vals;
    IVec *units = &s->tmp_units;
    units->n = 0;
    /* Level-0 facts need no justification, and watch lists are about
     * to be rebuilt wholesale. */
    memset(s->reasons, 0, (size_t)(s->nvars + 1) * 4);

    /* Phase 1: drop satisfied clauses, strip false literals. */
    IVec *stores[2] = {&s->clauses, &s->learnts};
    for (int si = 0; si < 2; si++) {
        IVec *refs = stores[si];
        int32_t j = 0;
        for (int32_t x = 0; x < refs->n; x++) {
            int32_t cref = refs->d[x];
            int32_t header = arena[cref - 1];
            int32_t size = HSIZE(header);
            int32_t end = cref + size;
            int satisfied = 0, nfalse = 0;
            for (int32_t k = cref; k < end; k++) {
                int8_t v = vals[arena[k]];
                if (v > 0) {
                    satisfied = 1;
                    break;
                }
                if (v == 0)
                    nfalse++;
            }
            if (satisfied) {
                mark_deleted(s, cref);
                continue;
            }
            if (nfalse) {
                int32_t m = 0;
                for (int32_t k = cref; k < end; k++)
                    if (vals[arena[k]] < 0)
                        arena[cref + m++] = arena[k];
                s->strengthened += nfalse;
                if (m == 0) {
                    s->ok = 0;
                    return;
                }
                if (m == 1) {
                    iv_push(units, arena[cref]);
                    mark_deleted(s, cref);
                    continue;
                }
                arena[cref - 1] = MKHEADER(m, HLEARNT(header));
                s->garbage += nfalse;
            } else if (size == 1) {
                /* An unattached unit learnt (created under pinned
                 * assumption levels): promote to a level-0 fact. */
                iv_push(units, arena[cref]);
                mark_deleted(s, cref);
                continue;
            }
            refs->d[j++] = cref;
        }
        refs->n = j;
    }

    /* Phase 2: forward subsumption + self-subsuming resolution over
     * the permanent (original) clause database.                      */
    int32_t nc = s->clauses.n;
    if (nc) {
        int32_t nlits = 2 * s->nvars + 2;
        IVec *occ = (IVec *)calloc((size_t)nlits, sizeof(IVec));
        uint64_t *sigmap = (uint64_t *)calloc((size_t)s->arena_n, sizeof(uint64_t));
        for (int32_t x = 0; x < nc; x++) {
            int32_t cref = s->clauses.d[x];
            int32_t size = HSIZE(arena[cref - 1]);
            uint64_t m = 0;
            for (int32_t k = cref; k < cref + size; k++) {
                iv_push(&occ[arena[k]], cref);
                m |= (uint64_t)1 << ((arena[k] >> 1) & 63);
            }
            sigmap[cref] = m;
        }
        SizeRef *order = (SizeRef *)malloc((size_t)nc * sizeof(SizeRef));
        for (int32_t x = 0; x < nc; x++) {
            order[x].cref = s->clauses.d[x];
            order[x].size = HSIZE(arena[order[x].cref - 1]);
        }
        qsort(order, (size_t)nc, sizeof(SizeRef), sizeref_cmp);
        int64_t ticks = s->simplify_ticks;
        for (int32_t x = 0; x < nc && ticks > 0; x++) {
            int32_t cref = order[x].cref;
            int32_t header = arena[cref - 1];
            if (HDEL(header))
                continue;
            int32_t size = HSIZE(header);
            int guarded = 0;
            for (int32_t k = cref; k < cref + size; k++)
                if (s->selector[arena[k] >> 1]) {
                    guarded = 1;
                    break;
                }
            if (guarded)
                continue; /* scoped clause: unusable as a subsumer */
            uint64_t csig = sigmap[cref];
            int32_t best = arena[cref];
            for (int32_t k = cref + 1; k < cref + size; k++)
                if (occ[arena[k]].n < occ[best].n)
                    best = arena[k];
            for (int side = 0; side < 2 && ticks > 0; side++) {
                IVec *cand = &occ[side ? (best ^ 1) : best];
                for (int32_t ci = 0; ci < cand->n && ticks > 0; ci++) {
                    int32_t d = cand->d[ci];
                    if (d == cref)
                        continue;
                    int32_t dheader = arena[d - 1];
                    if (HDEL(dheader))
                        continue;
                    if (csig & ~sigmap[d])
                        continue;
                    int32_t dsize = HSIZE(dheader);
                    if (dsize < size)
                        continue;
                    ticks -= dsize;
                    int32_t pos = 0, nflip = 0, flipped = 0;
                    for (int32_t k = d; k < d + dsize; k++) {
                        int32_t q = arena[k];
                        int in_c = 0, in_cn = 0;
                        for (int32_t m = cref; m < cref + size; m++) {
                            if (arena[m] == q)
                                in_c = 1;
                            else if (arena[m] == (q ^ 1))
                                in_cn = 1;
                        }
                        if (in_c)
                            pos++;
                        else if (in_cn) {
                            nflip++;
                            if (nflip > 1)
                                break;
                            flipped = q;
                        }
                    }
                    if (nflip > 1)
                        continue;
                    if (pos == size) {
                        mark_deleted(s, d);
                        s->subsumed++;
                    } else if (pos == size - 1 && nflip == 1) {
                        int32_t m = 0;
                        for (int32_t k = d; k < d + dsize; k++)
                            if (arena[k] != flipped)
                                arena[d + m++] = arena[k];
                        s->strengthened++;
                        if (m == 1) {
                            iv_push(units, arena[d]);
                            mark_deleted(s, d);
                        } else {
                            arena[d - 1] = MKHEADER(m, HLEARNT(dheader));
                            s->garbage += 1;
                            /* sigmap[d] stays a superset: still sound. */
                        }
                    }
                }
            }
        }
        free(order);
        for (int32_t i = 0; i < nlits; i++)
            free(occ[i].d);
        free(occ);
        free(sigmap);
        int32_t j = 0;
        for (int32_t x = 0; x < nc; x++)
            if (!HDEL(arena[s->clauses.d[x] - 1]))
                s->clauses.d[j++] = s->clauses.d[x];
        s->clauses.n = j;
    }

    /* Rebuild watches, replay units, restore invariants. */
    rebuild_watches(s);
    for (int32_t k = 0; k < units->n; k++)
        if (!enqueue(s, units->d[k], 0)) {
            s->ok = 0;
            return;
        }
    if (propagate(s)) {
        s->ok = 0;
        return;
    }
    if (s->garbage * 2 > s->arena_n)
        compact_arena(s);
}

/* ------------------------------------------------------------------ */
/* Search                                                              */
/* ------------------------------------------------------------------ */
static int32_t luby(int32_t i) {
    for (;;) {
        int32_t k = 1;
        while (((1 << k) - 1) < i)
            k++;
        if (((1 << k) - 1) == i)
            return 1 << (k - 1);
        i = i - (1 << (k - 1)) + 1;
    }
}

static void extract_model(Sat *s) {
    for (int32_t v = 1; v <= s->nvars; v++)
        s->model[v] = s->vals[v << 1] >= 0 ? s->vals[v << 1] : s->phase[v];
    s->has_model = 1;
}

static int search(Sat *s, const int32_t *assume, int32_t nassume,
                  int64_t max_conflicts) {
    int32_t restart_count = 0;
    int64_t conflicts_this_run = 0;
    int64_t budget = (int64_t)luby(1) * 128;
    int64_t stop_at = max_conflicts >= 0 ? s->conflicts + max_conflicts : -1;
    int64_t max_learnts = s->clauses.n / 3;
    if (max_learnts < 1000)
        max_learnts = 1000;

    for (;;) {
        int32_t conflict = propagate(s);
        if (conflict) {
            s->conflicts++;
            conflicts_this_run++;
            if (!s->tl_n) {
                s->ok = 0;
                return SAT_FALSE;
            }
            int32_t bt_level = analyze(s, conflict);
            backtrack(s, bt_level > nassume ? bt_level : nassume);
            IVec *learnt = &s->tmp_learnt;
            if (learnt->n == 1 && !s->tl_n) {
                s->learned++; /* a level-0 fact, kept forever */
                if (!enqueue(s, learnt->d[0], 0)) {
                    s->ok = 0;
                    return SAT_FALSE;
                }
            } else {
                int32_t cref = new_clause(s, learnt->d, learnt->n, 1);
                iv_push(&s->learnts, cref);
                s->learned++;
                if (learnt->n >= 2)
                    attach(s, cref);
                if (!enqueue(s, learnt->d[0], cref)) {
                    /* Falsified at the pinned assumption levels: the
                     * assumptions are inconsistent with the formula. */
                    IVec vars = {0};
                    for (int32_t k = 0; k < learnt->n; k++)
                        iv_push(&vars, learnt->d[k] >> 1);
                    final_core(s, vars.d, vars.n, assume, nassume);
                    free(vars.d);
                    return SAT_FALSE;
                }
            }
            s->var_inc /= s->var_decay;
            s->cla_inc /= s->cla_decay;
            if (stop_at >= 0 && s->conflicts >= stop_at) {
                backtrack(s, 0);
                return SAT_UNKNOWN;
            }
            if (s->learnts.n > max_learnts) {
                reduce_db(s);
                max_learnts = (int64_t)(max_learnts * 1.3);
            }
            continue;
        }

        if (conflicts_this_run >= budget) {
            restart_count++;
            s->restarts++;
            conflicts_this_run = 0;
            budget = (int64_t)luby(restart_count + 1) * 128;
            backtrack(s, nassume);
            continue;
        }

        int32_t next_lit;
        if (s->tl_n < nassume) {
            int32_t lit = assume[s->tl_n];
            int8_t v = s->vals[lit];
            if (v > 0) { /* already implied: open an empty level */
                if (s->tl_n == s->tl_cap) {
                    s->tl_cap = s->tl_cap ? s->tl_cap * 2 : 16;
                    s->trail_lim =
                        (int32_t *)realloc(s->trail_lim, (size_t)s->tl_cap * 4);
                }
                s->trail_lim[s->tl_n++] = s->trail_n;
                continue;
            }
            if (v == 0) { /* assumptions inconsistent */
                int32_t seed = lit >> 1;
                final_core(s, &seed, 1, assume, nassume);
                backtrack(s, 0);
                return SAT_FALSE;
            }
            next_lit = lit;
        } else {
            int32_t var = pick_branch_var(s);
            if (!var) {
                extract_model(s);
                backtrack(s, 0);
                return SAT_TRUE;
            }
            s->decisions++;
            next_lit = (var << 1) | (s->phase[var] ? 0 : 1);
        }
        if (s->tl_n == s->tl_cap) {
            s->tl_cap = s->tl_cap ? s->tl_cap * 2 : 16;
            s->trail_lim = (int32_t *)realloc(s->trail_lim, (size_t)s->tl_cap * 4);
        }
        s->trail_lim[s->tl_n++] = s->trail_n;
        enqueue(s, next_lit, 0);
    }
}

/* ------------------------------------------------------------------ */
/* Public API                                                          */
/* ------------------------------------------------------------------ */
int sat_add_clause(Sat *s, const int32_t *signed_lits, int32_t n) {
    if (!s->ok)
        return 0;
    IVec *lits = &s->tmp_learnt; /* scratch reuse is fine outside search */
    lits->n = 0;
    int taut = 0;
    for (int32_t k = 0; k < n && !taut; k++) {
        int32_t sv = signed_lits[k];
        int32_t v = sv < 0 ? -sv : sv;
        int32_t lit = (v << 1) | (sv < 0 ? 1 : 0);
        int dup = 0;
        for (int32_t m = 0; m < lits->n; m++) {
            if (lits->d[m] == lit)
                dup = 1;
            else if (lits->d[m] == (lit ^ 1))
                taut = 1;
        }
        if (taut || dup)
            continue;
        int8_t val = s->vals[lit]; /* trail is at level 0 here */
        if (val > 0)
            return 1; /* already satisfied at level 0 */
        if (val == 0)
            continue; /* falsified at level 0: drop the literal */
        iv_push(lits, lit);
    }
    if (taut)
        return 1;
    if (!lits->n) {
        s->ok = 0;
        return 0;
    }
    if (lits->n == 1) {
        if (!enqueue(s, lits->d[0], 0)) {
            s->ok = 0;
            return 0;
        }
        s->ok = propagate(s) == 0;
        return s->ok;
    }
    int32_t cref = new_clause(s, lits->d, lits->n, 0);
    iv_push(&s->clauses, cref);
    attach(s, cref);
    return 1;
}

/* Drop every clause containing the (now permanently false) literal. */
void sat_gc_lit(Sat *s, int32_t dead_signed) {
    int32_t v = dead_signed < 0 ? -dead_signed : dead_signed;
    int32_t dead = (v << 1) | (dead_signed < 0 ? 1 : 0);
    int any = 0;
    IVec *stores[2] = {&s->clauses, &s->learnts};
    for (int si = 0; si < 2; si++) {
        IVec *refs = stores[si];
        int32_t j = 0;
        for (int32_t x = 0; x < refs->n; x++) {
            int32_t cref = refs->d[x];
            int32_t size = HSIZE(s->arena[cref - 1]);
            int hit = 0;
            for (int32_t k = cref; k < cref + size; k++)
                if (s->arena[k] == dead) {
                    hit = 1;
                    break;
                }
            if (hit) {
                mark_deleted(s, cref);
                any = 1;
            } else {
                refs->d[j++] = cref;
            }
        }
        refs->n = j;
    }
    if (!any)
        return;
    sweep_watches(s);
    /* Level-0 facts need no justification; reasons are only consulted
     * for literals above level 0. */
    for (int32_t var = 1; var <= s->nvars; var++) {
        int32_t cref = s->reasons[var];
        if (cref && HDEL(s->arena[cref - 1]))
            s->reasons[var] = 0;
    }
}

int sat_solve(Sat *s, const int32_t *signed_assumps, int32_t n,
              int64_t max_conflicts) {
    s->core.n = 0;
    if (!s->ok)
        return SAT_FALSE;
    backtrack(s, 0);
    if (propagate(s)) {
        s->ok = 0;
        return SAT_FALSE;
    }
    if (s->clauses.n >= s->simplify_at) {
        simplify(s);
        if (!s->ok)
            return SAT_FALSE;
        int64_t next = (int64_t)s->clauses.n * 3 / 2;
        s->simplify_at = next > 2000 ? next : 2000;
    }
    if (s->garbage * 2 > s->arena_n)
        compact_arena(s);

    int32_t *assume = (int32_t *)malloc((size_t)(n > 0 ? n : 1) * 4);
    for (int32_t k = 0; k < n; k++) {
        int32_t sv = signed_assumps[k];
        int32_t v = sv < 0 ? -sv : sv;
        assume[k] = (v << 1) | (sv < 0 ? 1 : 0);
    }
    if (s->tl_cap < n + 4) {
        s->tl_cap = n + 64;
        s->trail_lim = (int32_t *)realloc(s->trail_lim, (size_t)s->tl_cap * 4);
    }
    int result = search(s, assume, n, max_conflicts);
    free(assume);
    backtrack(s, 0);
    return result;
}

int32_t sat_model_val(Sat *s, int32_t var) {
    if (!s->has_model || var < 1 || var > s->nvars)
        return -1;
    return s->model[var];
}

int sat_has_model(Sat *s) { return s->has_model; }

int32_t sat_core_len(Sat *s) { return s->core.n; }

/* Signed DIMACS form of the implicated assumptions, caller-filtered. */
void sat_core_get(Sat *s, int32_t *out) {
    for (int32_t k = 0; k < s->core.n; k++) {
        int32_t lit = s->core.d[k];
        out[k] = (lit & 1) ? -(lit >> 1) : (lit >> 1);
    }
}

int64_t sat_stat(Sat *s, int which) {
    switch (which) {
    case 0:
        return s->nvars;
    case 1:
        return s->clauses.n;
    case 2:
        return s->learnts.n;
    case 3:
        return s->conflicts;
    case 4:
        return s->decisions;
    case 5:
        return s->propagations;
    case 6:
        return s->restarts;
    case 7:
        return s->learned;
    case 8:
        return s->subsumed;
    case 9:
        return s->strengthened;
    default:
        return 0;
    }
}
