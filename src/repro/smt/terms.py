"""Hash-consed term AST for the finite-domain SMT layer.

Terms form an immutable DAG.  Construction goes through the module-level
constructor functions (:func:`BoolVar`, :func:`And`, :func:`Eq`, ...)
which perform light simplification (constant folding, flattening,
deduplication, complement detection) and intern structurally identical
terms so that equality checks and memoisation during CNF conversion are
O(1) identity comparisons.

Boolean kinds: ``true``, ``false``, ``var``, ``not``, ``and``, ``or``,
``ite`` (with boolean branches), ``eq`` (over enum terms; boolean
equality is rewritten to iff = and/or form).

Enum kinds: ``evar``, ``econst``, ``ite`` (with enum branches).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from .sorts import BOOL, BoolSort, EnumSort, Sort

__all__ = [
    "Term",
    "TRUE",
    "FALSE",
    "BoolVar",
    "BoolConst",
    "EnumVar",
    "EnumConst",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Xor",
    "Ite",
    "Eq",
    "Ne",
    "Distinct",
    "at_most_one",
    "exactly_one",
    "at_most_k",
    "free_vars",
    "iter_dag",
]


class Term:
    """An interned term.  Do not construct directly; use the constructors."""

    __slots__ = ("kind", "sort", "args", "payload", "_hash")

    def __init__(self, kind: str, sort: Sort, args: Tuple["Term", ...], payload):
        self.kind = kind
        self.sort = sort
        self.args = args
        self.payload = payload
        self._hash = hash((kind, id(sort), tuple(id(a) for a in args), payload))

    def __hash__(self) -> int:
        return self._hash

    # Interning guarantees structural equality == identity.
    def __eq__(self, other) -> bool:
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    # Convenience operators for readable model-building code.
    def __and__(self, other: "Term") -> "Term":
        return And(self, other)

    def __or__(self, other: "Term") -> "Term":
        return Or(self, other)

    def __invert__(self) -> "Term":
        return Not(self)

    def __rshift__(self, other: "Term") -> "Term":
        """``a >> b`` is implication, matching guarded-command style."""
        return Implies(self, other)

    @property
    def is_bool(self) -> bool:
        return isinstance(self.sort, BoolSort)

    def __repr__(self) -> str:
        return _pretty(self, depth=3)


_intern: Dict[tuple, Term] = {}
_var_sorts: Dict[str, Sort] = {}


def _mk(kind: str, sort: Sort, args: Tuple[Term, ...] = (), payload=None) -> Term:
    key = (kind, id(sort), tuple(id(a) for a in args), payload)
    term = _intern.get(key)
    if term is None:
        term = Term(kind, sort, args, payload)
        _intern[key] = term
    return term


def _reset_intern_tables() -> None:
    """Testing hook: drop all interned terms and variable declarations.

    The TRUE/FALSE singletons are re-registered so identity checks in the
    constructors keep working after a reset.
    """
    _intern.clear()
    _var_sorts.clear()
    _intern[("true", id(BOOL), (), None)] = TRUE
    _intern[("false", id(BOOL), (), None)] = FALSE


#: The true constant.
TRUE = _mk("true", BOOL)
#: The false constant.
FALSE = _mk("false", BOOL)


def BoolConst(value: bool) -> Term:
    """The boolean constant for ``value``."""
    return TRUE if value else FALSE


def _declare(name: str, sort: Sort) -> None:
    existing = _var_sorts.get(name)
    if existing is None:
        _var_sorts[name] = sort
    elif existing is not sort:
        raise ValueError(
            f"variable {name!r} redeclared with sort {sort.name}; "
            f"previously {existing.name}"
        )


def BoolVar(name: str) -> Term:
    """A boolean variable.  Same name always returns the same term."""
    _declare(name, BOOL)
    return _mk("var", BOOL, (), name)


def EnumVar(name: str, sort: EnumSort) -> Term:
    """An enum-sorted variable."""
    if not isinstance(sort, EnumSort):
        raise TypeError(f"EnumVar needs an EnumSort, got {sort!r}")
    _declare(name, sort)
    return _mk("evar", sort, (), name)


def EnumConst(sort: EnumSort, value) -> Term:
    """The constant of ``sort`` denoting ``value``."""
    sort.code_of(value)  # validate
    return _mk("econst", sort, (), value)


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def Not(a: Term) -> Term:
    if not a.is_bool:
        raise TypeError("Not() needs a boolean term")
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.kind == "not":
        return a.args[0]
    return _mk("not", BOOL, (a,))


def _flatten(kind: str, terms: Iterable[Term]) -> Iterator[Term]:
    for t in terms:
        if t.kind == kind:
            yield from t.args
        else:
            yield t


def And(*terms: Term) -> Term:
    """N-ary conjunction with flattening, dedup and complement detection."""
    flat: List[Term] = []
    seen = set()
    for t in _flatten("and", terms):
        if not t.is_bool:
            raise TypeError("And() needs boolean terms")
        if t is FALSE:
            return FALSE
        if t is TRUE or t in seen:
            continue
        seen.add(t)
        flat.append(t)
    for t in flat:
        if t.kind == "not" and t.args[0] in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t._hash)
    return _mk("and", BOOL, tuple(flat))


def Or(*terms: Term) -> Term:
    """N-ary disjunction with flattening, dedup and complement detection."""
    flat: List[Term] = []
    seen = set()
    for t in _flatten("or", terms):
        if not t.is_bool:
            raise TypeError("Or() needs boolean terms")
        if t is TRUE:
            return TRUE
        if t is FALSE or t in seen:
            continue
        seen.add(t)
        flat.append(t)
    for t in flat:
        if t.kind == "not" and t.args[0] in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t._hash)
    return _mk("or", BOOL, tuple(flat))


def Implies(a: Term, b: Term) -> Term:
    return Or(Not(a), b)


def Iff(a: Term, b: Term) -> Term:
    if a is b:
        return TRUE
    if a is TRUE:
        return b
    if b is TRUE:
        return a
    if a is FALSE:
        return Not(b)
    if b is FALSE:
        return Not(a)
    return And(Or(Not(a), b), Or(a, Not(b)))


def Xor(a: Term, b: Term) -> Term:
    return Not(Iff(a, b))


def Ite(cond: Term, then: Term, other: Term) -> Term:
    """If-then-else over boolean or enum branches."""
    if not cond.is_bool:
        raise TypeError("Ite() condition must be boolean")
    if then.sort is not other.sort:
        raise TypeError(
            f"Ite() branches have different sorts: "
            f"{then.sort.name} vs {other.sort.name}"
        )
    if cond is TRUE:
        return then
    if cond is FALSE:
        return other
    if then is other:
        return then
    if then.is_bool:
        return Or(And(cond, then), And(Not(cond), other))
    return _mk("ite", then.sort, (cond, then, other))


def Eq(a: Term, b: Term) -> Term:
    """Equality.  Boolean equality lowers to iff; enum equality is a term."""
    if a.sort is not b.sort:
        raise TypeError(f"Eq() over different sorts: {a.sort.name} vs {b.sort.name}")
    if a.is_bool:
        return Iff(a, b)
    if a is b:
        return TRUE
    if a.kind == "econst" and b.kind == "econst":
        return BoolConst(a.payload == b.payload)
    # Push equality through an ite of constants so ACL tables fold nicely.
    if a._hash > b._hash:
        a, b = b, a
    return _mk("eq", BOOL, (a, b))


def Ne(a: Term, b: Term) -> Term:
    return Not(Eq(a, b))


def Distinct(*terms: Term) -> Term:
    """Pairwise disequality of all given terms."""
    parts = [Ne(a, b) for i, a in enumerate(terms) for b in terms[i + 1 :]]
    return And(*parts)


def at_most_one(terms: Iterable[Term]) -> Term:
    """Pairwise at-most-one constraint (fine for the small n we use)."""
    ts = list(terms)
    parts = [
        Or(Not(a), Not(b)) for i, a in enumerate(ts) for b in ts[i + 1 :]
    ]
    return And(*parts)


def exactly_one(terms: Iterable[Term]) -> Term:
    ts = list(terms)
    return And(Or(*ts), at_most_one(ts))


def at_most_k(terms: Iterable[Term], k: int) -> Term:
    """At most ``k`` of ``terms`` hold (binomial encoding).

    Every (k+1)-subset contains a false term.  Fine for the small inputs
    we use it on (failure budgets over a dozen timesteps).
    """
    from itertools import combinations

    ts = list(terms)
    if k < 0:
        raise ValueError("k must be non-negative")
    if k >= len(ts):
        return TRUE
    parts = [Or(*(Not(t) for t in subset)) for subset in combinations(ts, k + 1)]
    return And(*parts)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def iter_dag(*roots: Term) -> Iterator[Term]:
    """Yield every distinct subterm reachable from ``roots``, post-order."""
    seen = set()
    stack: List[Tuple[Term, bool]] = [(r, False) for r in roots]
    while stack:
        term, expanded = stack.pop()
        if term in seen:
            continue
        if expanded:
            seen.add(term)
            yield term
        else:
            stack.append((term, True))
            for arg in term.args:
                if arg not in seen:
                    stack.append((arg, False))


def free_vars(*roots: Term) -> FrozenSet[Term]:
    """All variables (boolean and enum) appearing in ``roots``."""
    return frozenset(t for t in iter_dag(*roots) if t.kind in ("var", "evar"))


def _pretty(term: Term, depth: int = 6) -> str:
    if term.kind in ("true", "false"):
        return term.kind
    if term.kind in ("var", "evar"):
        return str(term.payload)
    if term.kind == "econst":
        return f"{term.sort.name}.{term.payload}"
    if depth <= 0:
        return "..."
    inner = ", ".join(_pretty(a, depth - 1) for a in term.args)
    return f"{term.kind}({inner})"
