"""Finite-domain SMT substrate (the offline stand-in for Z3).

The public surface mirrors the small subset of z3py that VMN's encoding
uses: sorts, term constructors, ``Solver``/``Model``, and uninterpreted
functions.  See DESIGN.md §2 for why a propositional CDCL core decides
exactly the formulas VMN generates once time is explicitly quantified.
"""

from .sat import SAT, UNKNOWN, UNSAT, SatSolver, luby
from .simplify import evaluate, is_constant, substitute
from .solver import Model, Solver
from .sorts import BOOL, BoolSort, EnumSort, Sort, int_range
from .terms import (
    FALSE,
    TRUE,
    And,
    BoolConst,
    BoolVar,
    Distinct,
    EnumConst,
    EnumVar,
    Eq,
    Iff,
    Implies,
    Ite,
    Ne,
    Not,
    Or,
    Term,
    Xor,
    at_most_k,
    at_most_one,
    exactly_one,
    free_vars,
    iter_dag,
)
from .ufunc import UFunc

__all__ = [
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "SatSolver",
    "luby",
    "Solver",
    "Model",
    "Sort",
    "BoolSort",
    "EnumSort",
    "BOOL",
    "int_range",
    "Term",
    "TRUE",
    "FALSE",
    "BoolVar",
    "BoolConst",
    "EnumVar",
    "EnumConst",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Xor",
    "Ite",
    "Eq",
    "Ne",
    "Distinct",
    "at_most_one",
    "exactly_one",
    "at_most_k",
    "free_vars",
    "iter_dag",
    "UFunc",
    "substitute",
    "evaluate",
    "is_constant",
]
