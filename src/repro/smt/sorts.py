"""Sorts (types) for the finite-domain SMT layer.

VMN's formulas range over booleans and small finite domains: node
identifiers, packet indices, addresses, ports and abstract packet
classes.  Once time is explicitly quantified (the paper grounds its
LTL-with-past encoding over discrete timesteps) every sort that appears
in a VMN formula is finite, which is what lets us decide satisfiability
with a propositional CDCL solver after bit-blasting.

Two sorts exist:

* :class:`BoolSort` — the booleans.
* :class:`EnumSort` — a named finite set of symbolic values (used for
  addresses, node ids, ports, payload tags, event kinds, ...).

``IntRange`` is provided as a convenience constructor for an
:class:`EnumSort` whose values are consecutive integers; ports and
counters use it.
"""

from __future__ import annotations

from typing import Iterable, Tuple


class Sort:
    """Base class for sorts.  Sorts are interned and compared by identity."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Sort({self.name})"


class BoolSort(Sort):
    """The boolean sort.  Use the module-level singleton :data:`BOOL`."""

    __slots__ = ()

    def __init__(self):
        super().__init__("Bool")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "Bool"


#: The unique boolean sort.
BOOL = BoolSort()


class EnumSort(Sort):
    """A finite sort with a fixed tuple of named values.

    Values are arbitrary hashable objects (typically strings or ints).
    The position of a value in ``values`` is its *code*; the bit-blaster
    encodes codes in binary using :attr:`nbits` boolean variables.

    Enum sorts are interned by name: constructing two ``EnumSort`` with
    the same name and same values returns the same object, while reusing
    a name with different values raises ``ValueError``.  This mirrors how
    SMT solvers treat sort declarations.
    """

    __slots__ = ("values", "_index")

    _registry: dict = {}

    def __new__(cls, name: str, values: Iterable = ()):  # noqa: D102
        values = tuple(values)
        existing = cls._registry.get(name)
        if existing is not None:
            if existing.values != values:
                raise ValueError(
                    f"EnumSort {name!r} redeclared with different values: "
                    f"{existing.values!r} vs {values!r}"
                )
            return existing
        if not values:
            raise ValueError(f"EnumSort {name!r} must have at least one value")
        if len(set(values)) != len(values):
            raise ValueError(f"EnumSort {name!r} has duplicate values")
        obj = object.__new__(cls)
        Sort.__init__(obj, name)
        obj.values = values
        obj._index = {v: i for i, v in enumerate(values)}
        cls._registry[name] = obj
        return obj

    def __init__(self, name: str, values: Iterable = ()):
        # All initialisation happens in __new__ so interned instances are
        # not re-initialised; nothing to do here.
        pass

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of values in the sort."""
        return len(self.values)

    @property
    def nbits(self) -> int:
        """Number of bits needed to encode a code in binary."""
        n = self.size
        bits = 0
        while (1 << bits) < n:
            bits += 1
        return max(bits, 1)

    def code_of(self, value) -> int:
        """Return the code (position) of ``value``; raise if absent."""
        try:
            return self._index[value]
        except KeyError:
            raise ValueError(f"{value!r} is not a value of sort {self.name}")

    def value_of(self, code: int):
        """Return the value with the given code."""
        return self.values[code]

    def __contains__(self, value) -> bool:
        return value in self._index

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"EnumSort({self.name!r}, size={self.size})"

    # Testing hook: the registry is process-global, and property-based
    # tests generate many throwaway sorts.
    @classmethod
    def _reset_registry(cls) -> None:
        cls._registry.clear()


def int_range(name: str, lo: int, hi: int) -> EnumSort:
    """An :class:`EnumSort` whose values are the integers ``lo..hi-1``.

    >>> s = int_range("small_port", 0, 4)
    >>> s.values
    (0, 1, 2, 3)
    """
    if hi <= lo:
        raise ValueError(f"int_range {name!r}: empty range [{lo}, {hi})")
    return EnumSort(name, tuple(range(lo, hi)))


def sort_key(sort: Sort) -> Tuple[str, int]:
    """A deterministic ordering key for sorts (used by the encoder)."""
    if isinstance(sort, EnumSort):
        return (sort.name, sort.size)
    return (sort.name, 0)
