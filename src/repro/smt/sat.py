"""A CDCL SAT solver over an int-encoded clause arena.

This is the propositional core of the SMT substrate that replaces Z3 in
this reproduction (Z3 is unavailable offline).  It is a conventional
conflict-driven clause-learning solver, rewritten for raw single-core
speed — every subsystem (slicing, warm BMC, the k-induction/IC3
portfolio, CEGIS repair screening) bottoms out in this loop:

* **clause arena** — all clauses live in one flat Python list of ints;
  a clause reference is the index of its first literal, the word before
  it packs ``size << 1 | learnt``.  No clause objects, no attribute
  dispatch on the hot path;
* **two-watched-literal propagation** with *blocker literals*: watch
  entries are ``(cref, blocker)`` pairs, and a satisfied blocker skips
  the clause without touching the arena at all;
* **dedicated binary-clause watch lists** (``(other, cref)`` pairs):
  two-literal clauses — the bulk of a Tseitin encoding — propagate with
  a single per-literal value lookup and never move watches;
* **per-literal value array** (``lvals[lit]`` is 1/0/-1 for
  true/false/unassigned), so truth tests are one index instead of a
  shift-and-xor on a per-variable array;
* first-UIP conflict analysis with recursive clause minimisation over a
  persistent ``seen`` byte array (no per-conflict allocation) and
  abstract-level pruning;
* VSIDS branching (lazy heap) with phase saving, Luby restarts,
  activity-driven learned-clause database reduction;
* incremental solving under assumptions (MiniSat-style
  ``solve(assumps)``) with complete failed-assumption cores;
* ``push()``/``pop()`` assertion scopes via activation literals;
* **budget-capped inprocessing** between incremental calls: clauses
  satisfied at level 0 are dropped, false literals are stripped, and a
  forward pass of subsumption + self-subsuming resolution shrinks the
  permanent clause database retained across calls (see
  :meth:`SatSolver._simplify`).

Scopes are the standard selector-variable construction: ``push()``
allocates a fresh *selector* variable ``s`` and every clause added while
the scope is active carries an extra ``¬s`` literal; ``solve`` assumes
``s`` for every active scope, which switches the scope's clauses on.
Conflict analysis resolves through those clauses, so any learned clause
that *depends* on a scope automatically contains its ``¬s`` — learned
clauses are therefore retained across ``pop()`` soundly: ``pop`` asserts
``¬s`` permanently (deactivating the scope) and garbage-collects every
clause, original or learned, that the assertion satisfies.  Learned
clauses derived only from outer scopes survive and keep pruning later
calls.  Inprocessing never uses a clause guarded by a *live* selector
as a subsumer, so nothing deduced from a scope outlives its ``pop()``.

Literal encoding: variable ``v`` (1-based) has positive literal ``2*v``
and negative literal ``2*v + 1``; ``lit ^ 1`` negates.  DIMACS-style
signed integers are accepted at the API boundary (:meth:`Solver.add_clause`
takes ``+v`` / ``-v``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, List, Optional, Sequence

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN", "luby"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    if i < 1:
        raise ValueError("luby is 1-based")
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """Incremental CDCL solver over integer variables.

    Usage::

        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve() == "sat"
        assert s.value(b) is True
    """

    def __init__(self):
        self.nvars = 0
        # Clause arena: clause ref = index of the first literal;
        # arena[ref - 1] packs ``size << 1 | learnt``.  Index 0 is a
        # sentinel so 0 can mean "no clause" in reason slots.
        self._arena: List[int] = [0]
        self._clause_refs: List[int] = []
        self._learnt_refs: List[int] = []
        self._cla_act: dict = {}  # learnt cref -> activity
        self._garbage = 0  # dead arena words; compacted when > half
        self._watches: List[list] = [[], []]  # lit -> [(cref, blocker)]
        self._bwatches: List[list] = [[], []]  # lit -> [(other, cref)]
        self._lvals: List[int] = [-1, -1]  # lit -> 1 true / 0 false / -1
        self._levels: List[int] = [0]  # indexed by var (1-based)
        self._reasons: List[int] = [0]  # var -> cref (0 = none)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._seen = bytearray(1)  # persistent conflict-analysis marks
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order: List[tuple] = []  # lazy max-heap of (-activity, var)
        self._ok = True
        self.model: List[Optional[bool]] = []
        self.core: List[int] = []  # failed-assumption literals (signed)
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_total = 0  # clauses ever learned (DB reduction ignores it)
        self.subsumed_total = 0  # clauses removed by inprocessing subsumption
        self.strengthened_total = 0  # literals removed by inprocessing
        self._scopes: List[int] = []  # active selector vars, outermost first
        self._selector_vars: set = set()  # every selector ever allocated
        # Inprocessing schedule: run when the permanent DB grew past the
        # threshold, spending at most `_simplify_ticks` literal visits.
        self._simplify_at = 2000
        self._simplify_ticks = 400_000
        # Optional telemetry sink (repro.obs.SolverEventSink): restart
        # and inprocessing moments are reported when set.  ``None`` by
        # default — the hot paths pay one predicate test at restart
        # granularity, nothing per conflict or propagation.
        self.events = None

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable, returning its positive DIMACS id."""
        self.nvars += 1
        self._levels.append(0)
        self._reasons.append(0)
        self._activity.append(0.0)
        self._phase.append(False)
        self._lvals.extend((-1, -1))
        self._watches.append([])
        self._watches.append([])
        self._bwatches.append([])
        self._bwatches.append([])
        self._seen.append(0)
        heappush(self._order, (-0.0, self.nvars))
        return self.nvars

    def _lit(self, signed: int) -> int:
        v = abs(signed)
        if v == 0 or v > self.nvars:
            raise ValueError(f"unknown variable in literal {signed}")
        return (v << 1) | (1 if signed < 0 else 0)

    def add_clause(self, signed_lits: Iterable[int], permanent: bool = False) -> bool:
        """Add a clause of signed literals.  Returns False if the solver
        becomes trivially unsatisfiable.

        Inside a ``push()`` scope the clause is retractable: it carries
        the scope's selector and is removed by the matching ``pop()``.
        ``permanent=True`` bypasses the scope (used for Tseitin
        definitions, which are valid in every scope).
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("add_clause only at decision level 0")
        if not permanent and self._scopes:
            signed_lits = list(signed_lits) + [-self._scopes[-1]]
        lvals = self._lvals
        lits: List[int] = []
        seen = set()
        for signed in signed_lits:
            lit = self._lit(signed)
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = lvals[lit]
            if val > 0:
                return True  # already satisfied at level 0
            if val == 0:
                continue  # falsified at level 0: drop the literal
            seen.add(lit)
            lits.append(lit)
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], 0):
                self._ok = False
                return False
            self._ok = self.propagate() is None
            return self._ok
        cref = self._new_clause(lits, 0)
        self._clause_refs.append(cref)
        self._attach(cref)
        return True

    def _new_clause(self, lits: List[int], learnt: int) -> int:
        arena = self._arena
        arena.append((len(lits) << 1) | learnt)
        cref = len(arena)
        arena.extend(lits)
        return cref

    def _attach(self, cref: int) -> None:
        arena = self._arena
        size = arena[cref - 1] >> 1
        l0 = arena[cref]
        l1 = arena[cref + 1]
        if size == 2:
            self._bwatches[l0 ^ 1].append((l1, cref))
            self._bwatches[l1 ^ 1].append((l0, cref))
        else:
            self._watches[l0 ^ 1].append((cref, l1))
            self._watches[l1 ^ 1].append((cref, l0))

    # ------------------------------------------------------------------
    # Assertion scopes (activation literals)
    # ------------------------------------------------------------------
    def push(self) -> int:
        """Open an assertion scope; returns its selector variable.

        Clauses added until the matching :meth:`pop` are guarded by the
        selector and removed (with every learned clause depending on
        them) when the scope closes.
        """
        if self._trail_lim:
            raise RuntimeError("push only at decision level 0")
        sel = self.new_var()
        self._scopes.append(sel)
        self._selector_vars.add(sel)
        return sel

    def pop(self) -> None:
        """Close the innermost scope, retracting its clauses.

        The selector is asserted false permanently; clauses guarded by
        it (and learned clauses that resolved through them — they carry
        the selector literal) become satisfied and are garbage-collected
        from the clause database and watch lists.  Learned clauses that
        do not mention the scope survive.
        """
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        if self._trail_lim:
            self._backtrack(0)
        sel = self._scopes.pop()
        self.add_clause([-sel], permanent=True)
        self._gc_deactivated((sel << 1) | 1)

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    def _gc_deactivated(self, dead_lit: int) -> None:
        """Drop every clause containing ``dead_lit`` (now true forever)."""
        arena = self._arena
        removed = set()
        for refs in (self._clause_refs, self._learnt_refs):
            live = []
            for cref in refs:
                size = arena[cref - 1] >> 1
                for k in range(cref, cref + size):
                    if arena[k] == dead_lit:
                        removed.add(cref)
                        self._garbage += size + 1
                        self._cla_act.pop(cref, None)
                        break
                else:
                    live.append(cref)
            refs[:] = live
        if not removed:
            return
        for wl in self._watches:
            wl[:] = [p for p in wl if p[0] not in removed]
        for bl in self._bwatches:
            bl[:] = [p for p in bl if p[1] not in removed]
        reasons = self._reasons
        for var in range(1, self.nvars + 1):
            if reasons[var] in removed:
                # Level-0 facts need no justification; reasons are only
                # consulted for literals above level 0.
                reasons[var] = 0

    def _compact_arena(self) -> None:
        """Rebuild the arena without dead words, remapping every ref.

        Only sound at decision level 0 (reasons are dropped; level-0
        facts need none).
        """
        arena = self._arena
        new_arena = [0]
        remap: dict = {}
        for refs in (self._clause_refs, self._learnt_refs):
            for cref in refs:
                header = arena[cref - 1]
                size = header >> 1
                new_arena.append(header)
                remap[cref] = len(new_arena)
                new_arena.extend(arena[cref:cref + size])
            refs[:] = [remap[c] for c in refs]
        self._arena = new_arena
        self._cla_act = {
            remap[c]: a for c, a in self._cla_act.items() if c in remap
        }
        for wl in self._watches:
            wl[:] = [(remap[p[0]], p[1]) for p in wl]
        for bl in self._bwatches:
            bl[:] = [(p[0], remap[p[1]]) for p in bl]
        self._reasons = [0] * (self.nvars + 1)
        self._garbage = 0

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> Optional[bool]:
        v = self._lvals[lit]
        if v < 0:
            return None
        return v > 0

    def _enqueue(self, lit: int, reason: int = 0) -> bool:
        lvals = self._lvals
        v = lvals[lit]
        if v >= 0:
            return v > 0
        lvals[lit] = 1
        lvals[lit ^ 1] = 0
        var = lit >> 1
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(lit)
        return True

    def propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause ref or None.

        This is the solver's hot loop: binary clauses propagate off
        their own watch lists with one value lookup each, and long
        clauses are only inspected when their blocker literal is not
        already satisfied.
        """
        watches = self._watches
        bwatches = self._bwatches
        lvals = self._lvals
        arena = self._arena
        trail = self._trail
        levels = self._levels
        reasons = self._reasons
        level = len(self._trail_lim)
        qhead = self._qhead
        nprops = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            nprops += 1
            for other, bcref in bwatches[lit]:
                v = lvals[other]
                if v > 0:
                    continue
                if v == 0:  # conflict
                    self._qhead = len(trail)
                    self.propagations += nprops
                    return bcref
                lvals[other] = 1
                lvals[other ^ 1] = 0
                bvar = other >> 1
                levels[bvar] = level
                reasons[bvar] = bcref
                trail.append(other)
            wl = watches[lit]
            if not wl:
                continue
            falsified = lit ^ 1
            i = 0
            j = 0
            n = len(wl)
            while i < n:
                pair = wl[i]
                i += 1
                if lvals[pair[1]] > 0:  # blocker satisfies the clause
                    wl[j] = pair
                    j += 1
                    continue
                cref = pair[0]
                # Ensure the falsified literal sits in the second slot.
                first = arena[cref]
                if first == falsified:
                    first = arena[cref + 1]
                    arena[cref] = first
                    arena[cref + 1] = falsified
                v = lvals[first]
                if v > 0:  # the other watch is already true
                    wl[j] = (cref, first)
                    j += 1
                    continue
                # Look for a new literal to watch.
                end = cref + (arena[cref - 1] >> 1)
                k = cref + 2
                while k < end:
                    if lvals[arena[k]] != 0:  # unassigned or true
                        break
                    k += 1
                if k < end:
                    lk = arena[k]
                    arena[cref + 1] = lk
                    arena[k] = falsified
                    watches[lk ^ 1].append((cref, first))
                    continue
                # Clause is unit or conflicting.
                wl[j] = (cref, first)
                j += 1
                if v == 0:  # first is false: conflict
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    self._qhead = len(trail)
                    self.propagations += nprops
                    return cref
                # Enqueue `first` (currently unassigned).
                lvals[first] = 1
                lvals[first ^ 1] = 0
                fvar = first >> 1
                levels[fvar] = level
                reasons[fvar] = cref
                trail.append(first)
            del wl[j:]
        self._qhead = qhead
        self.propagations += nprops
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: int) -> tuple:
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        trail = self._trail
        seen = self._seen
        activity = self._activity
        var_inc = self._var_inc
        cla_act = self._cla_act
        learnt: List[int] = [0]  # placeholder for the asserting literal
        to_clear: List[int] = []
        counter = 0
        lit = -1
        cref = conflict
        index = len(trail)
        cur_level = len(self._trail_lim)

        while True:
            header = arena[cref - 1]
            if header & 1:  # bump learnt-clause activity
                act = cla_act.get(cref, 0.0) + self._cla_inc
                cla_act[cref] = act
                if act > 1e20:
                    self._rescale_clause_activity()
            size = header >> 1
            skip_var = lit >> 1  # -1 on the first (conflict) round
            for k in range(cref, cref + size):
                q = arena[k]
                var = q >> 1
                if var == skip_var or seen[var]:
                    continue
                lv = levels[var]
                if lv > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    act = activity[var] + var_inc
                    activity[var] = act
                    if act > 1e100:
                        self._rescale_var_activity()
                        var_inc = self._var_inc
                    if lv == cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find next literal on the trail to resolve on.
            while True:
                index -= 1
                lit = trail[index]
                if seen[lit >> 1]:
                    break
            counter -= 1
            if counter == 0:
                break
            cref = reasons[lit >> 1]
            seen[lit >> 1] = 0
        learnt[0] = lit ^ 1

        # Recursive minimisation: drop literals implied by the rest.
        if len(learnt) > 1:
            level_set = {levels[q >> 1] for q in learnt[1:]}
            keep = [learnt[0]]
            for q in learnt[1:]:
                if not self._redundant(q, level_set, to_clear):
                    keep.append(q)
            learnt = keep

        for v in to_clear:
            seen[v] = 0

        # Backtrack level = second-highest level in the learnt clause.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if levels[learnt[i] >> 1] > levels[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = levels[learnt[1] >> 1]
        return learnt, bt_level

    def _redundant(self, lit: int, level_set: set, to_clear: List[int]) -> bool:
        """Is ``lit`` implied by other marked literals (clause minimisation)?

        Expansion prunes on abstract levels: a variable assigned at a
        decision level absent from the learnt clause can never be
        resolved away, so the walk aborts early.
        """
        reasons = self._reasons
        if not reasons[lit >> 1]:
            return False
        arena = self._arena
        levels = self._levels
        seen = self._seen
        stack = [lit]
        marked: List[int] = []
        while stack:
            p = stack.pop()
            cref = reasons[p >> 1]
            if not cref:
                for v in marked:
                    seen[v] = 0
                return False
            pvar = p >> 1
            size = arena[cref - 1] >> 1
            for k in range(cref, cref + size):
                q = arena[k]
                var = q >> 1
                if var == pvar or seen[var]:
                    continue
                lv = levels[var]
                if lv > 0:
                    if lv not in level_set:
                        for v in marked:
                            seen[v] = 0
                        return False
                    seen[var] = 1
                    marked.append(var)
                    stack.append(q)
        to_clear.extend(marked)
        return True

    def _analyze_final(self, failed_lit: int, assume_lits: List[int]) -> None:
        """Compute the subset of assumptions implying ``failed_lit``'s
        negation (MiniSat's analyzeFinal): walk the implication graph
        from the conflicting assumption back to assumption decisions."""
        self._final_core([failed_lit >> 1], assume_lits)

    def _final_core(self, seed_vars: Iterable[int], assume_lits: List[int]) -> None:
        """The assumptions implying the (falsified) seed variables'
        current values: walk the implication graph from the seeds back
        to assumption decisions.  Covers both final-conflict shapes —
        an assumption found false at placement, and a learnt clause
        falsified at the assumption levels during search."""
        arena = self._arena
        levels = self._levels
        assumption_vars = {lit >> 1 for lit in assume_lits}
        seen = set(seed_vars)
        # A seed that is itself an assumption contributes directly.
        core_vars = seen & assumption_vars
        for lit in reversed(self._trail):
            var = lit >> 1
            if var not in seen:
                continue
            cref = self._reasons[var]
            if not cref:
                if var in assumption_vars:
                    core_vars.add(var)
            else:
                size = arena[cref - 1] >> 1
                for k in range(cref, cref + size):
                    q = arena[k]
                    if levels[q >> 1] > 0:
                        seen.add(q >> 1)
        # Signed DIMACS form of the implicated assumptions.  Scope
        # selectors are solver-internal: a conflict that implicates only
        # them means "the (scoped) assertions are unsat on their own",
        # which callers observe as an empty core.
        self.core = [
            (lit >> 1) if (lit & 1) == 0 else -(lit >> 1)
            for lit in assume_lits
            if (lit >> 1) in core_vars and (lit >> 1) not in self._selector_vars
        ]

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        trail = self._trail
        lvals = self._lvals
        phase = self._phase
        activity = self._activity
        reasons = self._reasons
        order = self._order
        for idx in range(len(trail) - 1, bound - 1, -1):
            lit = trail[idx]
            var = lit >> 1
            phase[var] = not (lit & 1)
            lvals[lit] = -1
            lvals[lit ^ 1] = -1
            reasons[var] = 0
            heappush(order, (-activity[var], var))
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = bound

    # ------------------------------------------------------------------
    # VSIDS
    # ------------------------------------------------------------------
    def _rescale_var_activity(self) -> None:
        activity = self._activity
        for v in range(1, self.nvars + 1):
            activity[v] *= 1e-100
        self._var_inc *= 1e-100

    def _rescale_clause_activity(self) -> None:
        act = self._cla_act
        for c in act:
            act[c] *= 1e-20
        self._cla_inc *= 1e-20

    def _pick_branch_var(self) -> int:
        # Entries may carry stale (lower) activities; accepting them
        # costs a slightly suboptimal pick but avoids rebuilding the
        # heap on every activity bump.
        order = self._order
        lvals = self._lvals
        while order:
            var = heappop(order)[1]
            if lvals[var << 1] < 0:
                return var
        for var in range(1, self.nvars + 1):
            if lvals[var << 1] < 0:
                return var
        return 0

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        arena = self._arena
        act = self._cla_act
        learnts = self._learnt_refs
        learnts.sort(key=lambda c: act.get(c, 0.0))
        locked = set()
        reasons = self._reasons
        for lit in self._trail:
            cref = reasons[lit >> 1]
            if cref and arena[cref - 1] & 1:
                locked.add(cref)
        half = len(learnts) // 2
        kept: List[int] = []
        removed = set()
        for i, cref in enumerate(learnts):
            size = arena[cref - 1] >> 1
            if i < half and cref not in locked and size > 2:
                removed.add(cref)
                self._garbage += size + 1
                act.pop(cref, None)
            else:
                kept.append(cref)
        if not removed:
            return
        self._learnt_refs = kept
        # Binaries are never reduced, so their watch lists are untouched.
        for wl in self._watches:
            wl[:] = [p for p in wl if p[0] not in removed]

    # ------------------------------------------------------------------
    # Inprocessing (between incremental calls, at decision level 0)
    # ------------------------------------------------------------------
    def _simplify(self) -> None:
        """Budget-capped inprocessing over the retained clause database.

        Three sound transformations, all performed at decision level 0:

        1. clauses satisfied by a level-0 fact are dropped and false
           literals are stripped (originals and learnts alike);
        2. forward *subsumption*: a clause ``C ⊆ D`` deletes ``D``;
        3. *self-subsuming resolution*: ``C = A ∪ {l}`` against
           ``D ⊇ A ∪ {¬l}`` strengthens ``D`` by removing ``¬l``.

        A clause guarded by a live scope selector is never used as a
        subsumer — its deductions would not survive the scope's
        ``pop()`` — but may be subsumed or strengthened (the guard
        literal stays, so the result still dies with the scope).  The
        pair scan is capped by ``_simplify_ticks`` literal visits, which
        bounds the pause this pass can add to any single ``solve()``.
        """
        arena = self._arena
        lvals = self._lvals
        # Level-0 facts need no justification, and clause refs are about
        # to be invalidated wholesale.
        self._reasons = [0] * (self.nvars + 1)
        units: List[int] = []

        # ---- Phase 1: drop satisfied clauses, strip false literals.
        for refs in (self._clause_refs, self._learnt_refs):
            live = []
            for cref in refs:
                header = arena[cref - 1]
                size = header >> 1
                end = cref + size
                satisfied = False
                nfalse = 0
                for k in range(cref, end):
                    v = lvals[arena[k]]
                    if v > 0:
                        satisfied = True
                        break
                    if v == 0:
                        nfalse += 1
                if satisfied:
                    self._garbage += size + 1
                    self._cla_act.pop(cref, None)
                    continue
                if nfalse:
                    new_lits = [
                        arena[k] for k in range(cref, end) if lvals[arena[k]] < 0
                    ]
                    self.strengthened_total += nfalse
                    if not new_lits:
                        self._ok = False
                        return
                    if len(new_lits) == 1:
                        units.append(new_lits[0])
                        self._garbage += size + 1
                        self._cla_act.pop(cref, None)
                        continue
                    arena[cref - 1] = (len(new_lits) << 1) | (header & 1)
                    arena[cref:cref + len(new_lits)] = new_lits
                    self._garbage += nfalse
                elif size == 1:
                    # An unattached unit learnt (created under pinned
                    # assumption levels): promote it to a level-0 fact.
                    units.append(arena[cref])
                    self._garbage += 2
                    self._cla_act.pop(cref, None)
                    continue
                live.append(cref)
            refs[:] = live

        # ---- Phase 2: forward subsumption + self-subsuming resolution
        # over the permanent (original) clause database.
        refs = self._clause_refs
        deleted: set = set()
        occ: dict = {}
        sig: dict = {}
        selectors = self._selector_vars
        for cref in refs:
            size = arena[cref - 1] >> 1
            s = 0
            for k in range(cref, cref + size):
                q = arena[k]
                occ.setdefault(q, []).append(cref)
                s |= 1 << ((q >> 1) & 63)
            sig[cref] = s
        ticks = self._simplify_ticks
        for cref in sorted(refs, key=lambda c: arena[c - 1] >> 1):
            if ticks <= 0:
                break
            if cref in deleted:
                continue
            size = arena[cref - 1] >> 1
            lits = arena[cref:cref + size]
            if any((q >> 1) in selectors for q in lits):
                continue  # scoped clause: unusable as a subsumer
            cset = set(lits)
            csig = sig[cref]
            best = min(lits, key=lambda q: len(occ.get(q, ())))
            # occ[best] catches every subsumption and every
            # strengthening whose flipped literal is not `best`;
            # occ[best ^ 1] catches the remaining flipped-on-best case.
            for cand_list in (occ.get(best, ()), occ.get(best ^ 1, ())):
                for d in cand_list:
                    if ticks <= 0:
                        break
                    if d == cref or d in deleted:
                        continue
                    if csig & ~sig[d]:
                        continue
                    dheader = arena[d - 1]
                    dsize = dheader >> 1
                    if dsize < size:
                        continue
                    ticks -= dsize
                    pos = 0
                    nflip = 0
                    flipped = 0
                    for k in range(d, d + dsize):
                        q = arena[k]
                        if q in cset:
                            pos += 1
                        elif q ^ 1 in cset:
                            nflip += 1
                            if nflip > 1:
                                break
                            flipped = q
                    if nflip > 1:
                        continue
                    if pos == size:
                        deleted.add(d)
                        self._garbage += dsize + 1
                        self.subsumed_total += 1
                    elif pos == size - 1 and nflip == 1:
                        new_lits = [
                            arena[k]
                            for k in range(d, d + dsize)
                            if arena[k] != flipped
                        ]
                        self.strengthened_total += 1
                        if len(new_lits) == 1:
                            units.append(new_lits[0])
                            deleted.add(d)
                            self._garbage += dsize + 1
                        else:
                            arena[d - 1] = (len(new_lits) << 1) | (dheader & 1)
                            arena[d:d + len(new_lits)] = new_lits
                            self._garbage += 1
                            # sig[d] is now a superset signature — still
                            # sound for the subset test, only less sharp.
        if deleted:
            refs[:] = [c for c in refs if c not in deleted]

        # ---- Rebuild watches, replay units, restore invariants.
        nlits = 2 * self.nvars + 2
        self._watches = [[] for _ in range(nlits)]
        self._bwatches = [[] for _ in range(nlits)]
        for store in (self._clause_refs, self._learnt_refs):
            for cref in store:
                if arena[cref - 1] >> 1 >= 2:
                    self._attach(cref)
        for u in units:
            if not self._enqueue(u, 0):
                self._ok = False
                return
        if self.propagate() is not None:
            self._ok = False
            return
        if self._garbage * 2 > len(self._arena):
            self._compact_arena()

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        """Search for a model under the given assumptions.

        Active scope selectors are assumed implicitly (before the user
        assumptions), so scoped clauses are in force.  Conflict
        backtracking never pops assumption levels, and learned clauses
        are retained for the next call.  ``max_conflicts`` budgets *this
        call* (the cumulative :attr:`conflicts` counter keeps growing
        across calls).

        Returns ``"sat"`` (model in :attr:`model`), ``"unsat"``, or
        ``"unknown"`` if ``max_conflicts`` was exhausted.
        """
        self.core = []
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        conflict = self.propagate()
        if conflict is not None:
            self._ok = False
            return UNSAT
        if len(self._clause_refs) >= self._simplify_at:
            sub0, str0 = self.subsumed_total, self.strengthened_total
            self._simplify()
            if self.events is not None:
                self.events.inprocessing(
                    self.subsumed_total - sub0,
                    self.strengthened_total - str0,
                )
            if not self._ok:
                return UNSAT
            self._simplify_at = max(2000, len(self._clause_refs) * 3 // 2)
        if self._garbage * 2 > len(self._arena):
            self._compact_arena()

        assume_lits = [sel << 1 for sel in self._scopes]
        assume_lits += [self._lit(a) for a in assumptions]
        self._n_assumptions = len(assume_lits)
        try:
            return self._search(assume_lits, max_conflicts)
        finally:
            self._n_assumptions = 0
            self._backtrack(0)

    def _search(self, assume_lits: List[int], max_conflicts: Optional[int]) -> str:
        restart_count = 0
        conflicts_this_run = 0
        budget = luby(restart_count + 1) * 128
        stop_at = None if max_conflicts is None else self.conflicts + max_conflicts
        max_learnts = max(len(self._clause_refs) // 3, 1000)

        while True:
            conflict = self.propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_this_run += 1
                if not self._trail_lim:
                    self._ok = False
                    return UNSAT
                learnt, bt_level = self._analyze(conflict)
                # Never backtrack past the assumptions.
                self._backtrack(max(bt_level, self._assumption_level))
                if len(learnt) == 1 and not self._trail_lim:
                    self.learned_total += 1  # a level-0 fact, kept forever
                    if not self._enqueue(learnt[0], 0):
                        self._ok = False
                        return UNSAT
                else:
                    cref = self._new_clause(learnt, 1)
                    self._learnt_refs.append(cref)
                    self.learned_total += 1
                    if len(learnt) >= 2:
                        self._attach(cref)
                    if not self._enqueue(learnt[0], cref):
                        # The learnt clause is falsified at the pinned
                        # assumption levels: the assumptions themselves
                        # are inconsistent with the formula.
                        self._final_core([q >> 1 for q in learnt], assume_lits)
                        return UNSAT
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if stop_at is not None and self.conflicts >= stop_at:
                    self._backtrack(0)
                    return UNKNOWN
                if len(self._learnt_refs) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue

            if conflicts_this_run >= budget:
                restart_count += 1
                self.restarts += 1
                if self.events is not None:
                    self.events.restart()
                conflicts_this_run = 0
                budget = luby(restart_count + 1) * 128
                self._backtrack(self._assumption_level)
                continue

            # Place assumptions as pseudo-decisions in order.
            next_lit = None
            if len(self._trail_lim) < len(assume_lits):
                lit = assume_lits[len(self._trail_lim)]
                val = self._lvals[lit]
                if val > 0:
                    # Already implied: open an empty decision level.
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == 0:
                    self._analyze_final(lit, assume_lits)
                    self._backtrack(0)
                    return UNSAT  # assumptions are inconsistent
                next_lit = lit
            else:
                var = self._pick_branch_var()
                if var == 0:
                    self._extract_model()
                    self._backtrack(0)
                    return SAT
                self.decisions += 1
                next_lit = (var << 1) | (0 if self._phase[var] else 1)
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, 0)

    @property
    def _assumption_level(self) -> int:
        # During _search() the first len(assumptions) decision levels
        # (scope selectors + user assumptions) are immovable.
        return getattr(self, "_n_assumptions", 0)

    def solve_with(self, assumptions: Sequence[int] = (), **kw) -> str:
        """Historical alias of :meth:`solve` (which now always pins
        assumption levels and restores decision level 0 on return)."""
        return self.solve(assumptions, **kw)

    def _extract_model(self) -> None:
        lvals = self._lvals
        phase = self._phase
        self.model = [None] + [
            (lvals[var << 1] > 0) if lvals[var << 1] >= 0 else phase[var]
            for var in range(1, self.nvars + 1)
        ]

    def value(self, var: int) -> Optional[bool]:
        """Model value of ``var`` after a ``sat`` answer."""
        if not self.model:
            return None
        return self.model[abs(var)]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Search statistics for benchmarking and debugging.

        ``conflicts``/``decisions``/``propagations``/``restarts``,
        ``learned``, ``subsumed`` and ``strengthened`` are *cumulative*
        across every :meth:`solve` call on this instance (incremental
        calls never reset them); ``clauses`` and ``learnts`` are the
        current database sizes (they shrink on DB reduction, scope pops
        and inprocessing).
        """
        return {
            "vars": self.nvars,
            "clauses": len(self._clause_refs),
            "learnts": len(self._learnt_refs),
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": self.learned_total,
            "subsumed": self.subsumed_total,
            "strengthened": self.strengthened_total,
            "scopes": len(self._scopes),
        }


# ---------------------------------------------------------------------------
# Native acceleration
# ---------------------------------------------------------------------------
# satcore.c implements this exact solver in C; _native.py compiles it on
# demand with the system C compiler and wraps it in the same public API.
# When a compiler is available the module exports the native solver as
# ``SatSolver``; otherwise (or with ``REPRO_SAT_NATIVE=0``) the
# pure-Python arena solver above runs, with identical semantics.  The
# Python implementation stays importable as ``PySatSolver`` either way.
PySatSolver = SatSolver
NATIVE_ENABLED = False


def _load_native_solver():
    import os

    if os.environ.get("REPRO_SAT_NATIVE", "").strip().lower() in {"0", "false", "off", "no"}:
        return None
    try:
        from ._native import NativeSatSolver
    except Exception:
        return None
    try:
        if NativeSatSolver.available():
            return NativeSatSolver
    except Exception:
        return None
    return None


_native_cls = _load_native_solver()
if _native_cls is not None:
    SatSolver = _native_cls
    NATIVE_ENABLED = True
del _native_cls

__all__ += ["PySatSolver", "NATIVE_ENABLED"]
