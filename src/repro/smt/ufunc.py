"""Uninterpreted functions over finite sorts (Ackermann encoding).

VMN's classification oracle is "just variables" from the solver's point
of view: ``origin(p)``, ``skype?(p)``, ``remapped_port(p)`` are
uninterpreted symbols the solver may assign freely, subject only to
congruence (equal arguments give equal results) and any output
constraints the middlebox model declares (e.g. a packet belongs to at
most one application class).

Each syntactically distinct application ``f(a1..an)`` becomes a fresh
result variable; congruence axioms ``a = b  =>  f(a) = f(b)`` are added
pairwise between applications.  With the handful of symbolic packets a
slice contains, this stays small.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .sorts import BoolSort, Sort
from .terms import And, BoolVar, EnumVar, Eq, Implies, Term

__all__ = ["UFunc"]


class UFunc:
    """An uninterpreted function symbol with explicit congruence axioms.

    >>> origin = UFunc("origin", (addr_sort,), addr_sort)
    >>> t = origin(pkt_src)          # a result variable
    >>> axioms = origin.congruence_axioms()   # assert these
    """

    _instances: Dict[str, "UFunc"] = {}

    def __init__(self, name: str, domain: Sequence[Sort], range_sort: Sort):
        existing = UFunc._instances.get(name)
        if existing is not None and (
            tuple(existing.domain) != tuple(domain)
            or existing.range_sort is not range_sort
        ):
            raise ValueError(f"UFunc {name!r} redeclared with a different signature")
        self.name = name
        self.domain = tuple(domain)
        self.range_sort = range_sort
        self._apps: Dict[Tuple[Term, ...], Term] = (
            existing._apps if existing is not None else {}
        )
        UFunc._instances[name] = self

    def __call__(self, *args: Term) -> Term:
        if len(args) != len(self.domain):
            raise TypeError(
                f"{self.name} expects {len(self.domain)} arguments, got {len(args)}"
            )
        for arg, sort in zip(args, self.domain):
            if arg.sort is not sort:
                raise TypeError(
                    f"{self.name}: argument sort {arg.sort.name}, expected {sort.name}"
                )
        cached = self._apps.get(args)
        if cached is not None:
            return cached
        idx = len(self._apps)
        if isinstance(self.range_sort, BoolSort):
            result = BoolVar(f"{self.name}!app{idx}")
        else:
            result = EnumVar(f"{self.name}!app{idx}", self.range_sort)
        self._apps[args] = result
        return result

    # ------------------------------------------------------------------
    def congruence_axioms(self) -> List[Term]:
        """Pairwise functional-consistency axioms for all applications."""
        axioms: List[Term] = []
        apps = list(self._apps.items())
        for i, (args_a, res_a) in enumerate(apps):
            for args_b, res_b in apps[i + 1 :]:
                same_args = And(*(Eq(x, y) for x, y in zip(args_a, args_b)))
                axioms.append(Implies(same_args, Eq(res_a, res_b)))
        return axioms

    @property
    def applications(self) -> Dict[Tuple[Term, ...], Term]:
        """Read-only view of recorded applications (args tuple -> result)."""
        return dict(self._apps)

    @classmethod
    def _reset_registry(cls) -> None:
        """Testing hook: forget all declared function symbols."""
        cls._instances.clear()
