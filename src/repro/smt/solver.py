"""A z3py-flavoured ``Solver`` / ``Model`` facade over the CDCL core.

This is the surface the rest of the repository programs against, shaped
after the small subset of the z3py API that VMN's encoding needs::

    s = Solver()
    s.add(Implies(a, b), Not(b))
    if s.check() == "sat":
        m = s.model()
        print(m[a])

``check`` accepts assumption terms (used heavily by the BMC driver to
activate one invariant at a time on a shared network encoding) and an
optional conflict budget, returning ``"unknown"`` when exhausted —
mirroring how the paper leans on Z3's heuristics and timeouts.

The solver is incremental end-to-end: ``push()``/``pop()`` open and
close assertion scopes (activation-literal based, see
:mod:`repro.smt.sat`), learned clauses survive both ``pop()`` and
repeated ``check()`` calls, and the shared :class:`CnfConverter` keeps
Tseitin variable allocation stable so re-asserting a term seen in any
earlier scope reuses its existing CNF.  ``stats()`` counters are
cumulative across calls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..obs import SolverEventSink, get_registry, get_tracer, solver_counter_snapshot
from .cnf import CnfConverter
from .encode import EnumLowering, bit_name
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .sorts import EnumSort
from .terms import BoolVar, Term

__all__ = ["Solver", "Model", "SAT", "UNSAT", "UNKNOWN"]


class Model:
    """A satisfying assignment, queried with term evaluation.

    ``model[x]`` returns a Python ``bool`` for boolean variables and the
    enum *value* (string/int) for enum variables.  Compound terms are
    evaluated structurally.
    """

    def __init__(self, solver: "Solver"):
        self._solver = solver
        self._cache: Dict[Term, object] = {}

    def __getitem__(self, term: Term):
        return self.eval(term)

    def eval(self, term: Term):
        """Evaluate ``term`` under this model."""
        cached = self._cache.get(term)
        if cached is not None or term in self._cache:
            return cached
        value = self._eval(term)
        self._cache[term] = value
        return value

    def _eval(self, term: Term):
        kind = term.kind
        if kind == "true":
            return True
        if kind == "false":
            return False
        if kind == "var":
            return self._solver._bool_value(term)
        if kind == "evar":
            return self._solver._enum_value(term)
        if kind == "econst":
            return term.payload
        if kind == "not":
            return not self.eval(term.args[0])
        if kind == "and":
            return all(self.eval(a) for a in term.args)
        if kind == "or":
            return any(self.eval(a) for a in term.args)
        if kind == "eq":
            return self.eval(term.args[0]) == self.eval(term.args[1])
        if kind == "ite":
            if self.eval(term.args[0]):
                return self.eval(term.args[1])
            return self.eval(term.args[2])
        raise TypeError(f"cannot evaluate term kind {kind!r}")


class Solver:
    """Incremental finite-domain SMT solver (the Z3 stand-in)."""

    def __init__(self):
        self.sat = SatSolver()
        self._lowering = EnumLowering()
        self._cnf = CnfConverter(self.sat)
        self.assertions: List[Term] = []
        self._result: Optional[str] = None
        self._assumption_terms: Dict[int, Term] = {}
        self._scope_marks: List[int] = []  # len(assertions) at each push

    # ------------------------------------------------------------------
    def add(self, *terms: Term) -> None:
        """Assert one or more boolean terms."""
        for term in terms:
            if not term.is_bool:
                raise TypeError("Solver.add() expects boolean terms")
            self.assertions.append(term)
            lowered = self._lowering.lower(term)
            self._assert_side_conditions()
            self._cnf.assert_term(lowered)

    def _assert_side_conditions(self) -> None:
        # Domain constraints define the enum variables themselves; they
        # must survive the scope that happened to mention a variable
        # first (the lowering memo never re-emits them).
        for cond in self._lowering.drain_side_conditions():
            self._cnf.assert_term(cond, permanent=True)

    # ------------------------------------------------------------------
    # Assertion scopes
    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open an assertion scope (z3-style).

        Assertions added until the matching :meth:`pop` are retracted
        with it; learned clauses that do not depend on them are kept.
        """
        self.sat.push()
        self._scope_marks.append(len(self.assertions))

    def pop(self) -> None:
        """Close the innermost scope, retracting its assertions."""
        if not self._scope_marks:
            raise RuntimeError("pop without matching push")
        mark = self._scope_marks.pop()
        del self.assertions[mark:]
        self.sat.pop()
        self._result = None

    @property
    def num_scopes(self) -> int:
        return len(self._scope_marks)

    def check(
        self,
        assumptions: Iterable[Term] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        """Decide satisfiability; returns ``"sat"``/``"unsat"``/``"unknown"``."""
        lits = []
        self._assumption_terms = {}
        for term in assumptions:
            lowered = self._lowering.lower(term)
            self._assert_side_conditions()
            lit = self._cnf.literal(lowered)
            lits.append(lit)
            self._assumption_terms[lit] = term
        tracer = get_tracer()
        if not tracer.enabled:
            # getattr: stand-in solvers (the vendored pre-rewrite SAT
            # core in benchmarks/_sat_reference.py) predate the event
            # sink and carry no ``events`` slot.
            if getattr(self.sat, "events", None) is not None:
                self.sat.events = None  # observe() scope ended; detach
            self._result = self.sat.solve_with(lits, max_conflicts=max_conflicts)
            return self._result
        # Observability path: one span per solver query, its counter
        # deltas as tags and absorbed into the registry, with the
        # restart/inprocessing event sink attached for the duration.
        registry = get_registry()
        sink = getattr(self.sat, "events", None)
        if sink is None or sink.tracer is not tracer:
            try:
                self.sat.events = SolverEventSink(tracer, registry)
            except AttributeError:  # __slots__ solver without the field
                pass
        before = solver_counter_snapshot(self.sat.stats())
        with tracer.span("solve", cat="smt", assumptions=len(lits)) as span:
            self._result = self.sat.solve_with(lits, max_conflicts=max_conflicts)
            delta = {
                k: v - before[k]
                for k, v in solver_counter_snapshot(self.sat.stats()).items()
            }
            registry.record_solver(delta)
            registry.counter(
                "repro_solver_queries_total", "solver queries issued"
            ).inc(result=self._result)
            span.tag(result=self._result, **delta)
        return self._result

    def unsat_core(self) -> List[Term]:
        """The failed assumptions of the last ``unsat`` answer.

        A (not necessarily minimal) subset of the assumption terms that
        is already inconsistent with the assertions.  Empty when the
        assertions are unsatisfiable on their own.
        """
        if self._result != UNSAT:
            raise RuntimeError(f"no core available (last result: {self._result})")
        return [
            self._assumption_terms[lit]
            for lit in self.sat.core
            if lit in self._assumption_terms
        ]

    def minimal_core(
        self,
        hard: Iterable[Term],
        candidates: Iterable[Term],
        max_conflicts: Optional[int] = None,
    ) -> List[Term]:
        """A minimal subset of ``candidates`` still unsat with ``hard``.

        ``check(hard + candidates)`` must answer ``unsat``.  The result
        is irreducible — dropping any single member makes the query
        satisfiable — but not necessarily globally minimum.  The
        procedure is deterministic for a fixed candidate order: start
        from the solver's (non-minimal) assumption core, then greedily
        try dropping each survivor in order, keeping the drop whenever
        the remainder is still unsat (and re-filtering through the new
        core, which often removes several at once).

        This is the core-to-config mapping surface the blame layer
        (:mod:`repro.provenance.blame`) drives with guard variables as
        candidates; it is generic over any assumption terms.
        """
        hard = list(hard)
        candidates = list(candidates)
        result = self.check(hard + candidates, max_conflicts=max_conflicts)
        if result != UNSAT:
            raise RuntimeError(
                f"minimal_core needs an unsat base query (got {result!r})"
            )
        core_ids = {id(t) for t in self.unsat_core()}
        kept = [t for t in candidates if id(t) in core_ids]
        i = 0
        while i < len(kept):
            trial = kept[:i] + kept[i + 1:]
            if self.check(hard + trial,
                          max_conflicts=max_conflicts) == UNSAT:
                core_ids = {id(t) for t in self.unsat_core()}
                kept = [t for t in trial if id(t) in core_ids]
            else:
                i += 1
        return kept

    def model(self) -> Model:
        """The model of the last ``sat`` answer."""
        if self._result != SAT:
            raise RuntimeError(f"no model available (last result: {self._result})")
        return Model(self)

    def stats(self) -> dict:
        """Cumulative search statistics (see :meth:`SatSolver.stats`).

        Counters (``conflicts``, ``restarts``, ``learned``, and the
        inprocessing pair ``subsumed``/``strengthened``, ...) never
        reset between incremental :meth:`check` calls; diff two
        snapshots to attribute work to one call.  The database gauges
        (``clauses``, ``learnts``) are *current* sizes and may shrink —
        on ``pop()``, on learned-DB reduction, and when the arena
        solver's inprocessing pass tightens the permanent clause set.
        """
        return self.sat.stats()

    # ------------------------------------------------------------------
    # Model-extraction plumbing used by Model.
    # ------------------------------------------------------------------
    def _bool_value(self, var_term: Term) -> bool:
        lit = self._cnf._lit_of.get(var_term)
        if lit is None:
            return False  # unconstrained variable: any value works
        value = self.sat.value(abs(lit))
        if value is None:
            return False
        return value if lit > 0 else not value

    def _enum_value(self, var_term: Term):
        sort: EnumSort = var_term.sort  # type: ignore[assignment]
        code = 0
        for i in range(sort.nbits):
            bit_var = BoolVar(bit_name(var_term.payload, i))
            if self._bool_value(bit_var):
                code |= 1 << i
        if code >= sort.size:
            code = 0  # unconstrained bits may decode out of range
        return sort.value_of(code)
