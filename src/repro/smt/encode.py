"""Lowering of enum-sorted terms to pure boolean terms (bit-blasting).

Each enum variable of sort ``S`` is represented by ``S.nbits`` boolean
variables holding the binary code of its value, plus — when the sort
size is not a power of two — a domain constraint excluding the unused
codes.  Enum constants become tuples of boolean constants, enum ``ite``
becomes bitwise ``ite``, and enum equality becomes a conjunction of
per-bit equivalences.

The lowering is structural and memoised, so terms shared across many
assertions are lowered once per :class:`EnumLowering` instance.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .sorts import EnumSort
from .terms import (
    FALSE,
    TRUE,
    And,
    BoolVar,
    Iff,
    Ite,
    Not,
    Or,
    Term,
    iter_dag,
)

__all__ = ["EnumLowering", "bit_name"]


def bit_name(var_name: str, bit: int) -> str:
    """Name of the boolean variable holding bit ``bit`` of an enum var."""
    return f"{var_name}!b{bit}"


def _const_bits(sort: EnumSort, value) -> Tuple[Term, ...]:
    code = sort.code_of(value)
    return tuple(
        TRUE if (code >> i) & 1 else FALSE for i in range(sort.nbits)
    )


class EnumLowering:
    """Rewrites terms containing enum subterms into pure boolean terms."""

    def __init__(self):
        self._bits: Dict[Term, Tuple[Term, ...]] = {}
        self._lowered: Dict[Term, Term] = {}
        self._domain_done: set = set()
        self.side_conditions: List[Term] = []

    # ------------------------------------------------------------------
    def bits_of(self, term: Term) -> Tuple[Term, ...]:
        """Boolean bit terms (LSB first) denoting the enum term's code."""
        cached = self._bits.get(term)
        if cached is not None:
            return cached
        kind = term.kind
        if kind == "econst":
            bits = _const_bits(term.sort, term.payload)
        elif kind == "evar":
            sort: EnumSort = term.sort  # type: ignore[assignment]
            bits = tuple(
                BoolVar(bit_name(term.payload, i)) for i in range(sort.nbits)
            )
            self._add_domain_constraint(term, bits)
        elif kind == "ite":
            cond = self.lower(term.args[0])
            then_bits = self.bits_of(term.args[1])
            else_bits = self.bits_of(term.args[2])
            bits = tuple(
                Ite(cond, t, e) for t, e in zip(then_bits, else_bits)
            )
        else:  # pragma: no cover - guarded by the term constructors
            raise TypeError(f"not an enum term kind: {kind!r}")
        self._bits[term] = bits
        return bits

    def _add_domain_constraint(self, var: Term, bits: Tuple[Term, ...]) -> None:
        if var in self._domain_done:
            return
        self._domain_done.add(var)
        sort: EnumSort = var.sort  # type: ignore[assignment]
        n = sort.size
        if n == (1 << sort.nbits):
            return
        # Unsigned comparison circuit for "code < n" with constant n,
        # folded LSB-to-MSB:  lt' = (x_i < n_i) or (x_i = n_i and lt).
        lt = FALSE
        for i in range(sort.nbits):
            n_bit = (n >> i) & 1
            if n_bit:
                lt = Or(Not(bits[i]), lt)
            else:
                lt = And(Not(bits[i]), lt)
        self.side_conditions.append(lt)

    # ------------------------------------------------------------------
    def lower(self, term: Term) -> Term:
        """Return a pure-boolean term equivalent to boolean ``term``."""
        cached = self._lowered.get(term)
        if cached is not None:
            return cached
        for node in iter_dag(term):
            if node in self._lowered or not node.is_bool:
                continue
            self._lowered[node] = self._lower_node(node)
        return self._lowered[term]

    def _lower_node(self, node: Term) -> Term:
        kind = node.kind
        if kind in ("true", "false", "var"):
            return node
        if kind == "not":
            return Not(self._lowered[node.args[0]])
        if kind == "and":
            return And(*(self._lowered[a] for a in node.args))
        if kind == "or":
            return Or(*(self._lowered[a] for a in node.args))
        if kind == "eq":
            a_bits = self.bits_of(node.args[0])
            b_bits = self.bits_of(node.args[1])
            return And(*(Iff(x, y) for x, y in zip(a_bits, b_bits)))
        raise TypeError(f"unexpected boolean term kind {kind!r}")

    def drain_side_conditions(self) -> List[Term]:
        """Domain constraints accumulated since the last drain."""
        out = self.side_conditions
        self.side_conditions = []
        return out
