"""ctypes loader and wrapper for the C SAT core (``satcore.c``).

The C source ships with the package and is compiled on first use with
whatever system C compiler is available (``cc``/``gcc``/``clang``) into
a per-user cache directory keyed by a hash of the source, so rebuilds
happen only when the source changes.  There is no build-time step and no
third-party dependency: if no compiler is found (or the build fails for
any reason) :func:`load` returns ``None`` and ``repro.smt.sat`` keeps
exporting the pure-Python arena solver, which implements the same
algorithm with the same observable behaviour.

:class:`NativeSatSolver` mirrors the :class:`repro.smt.sat.SatSolver`
public API exactly — ``new_var``/``add_clause``/``push``/``pop``/
``solve``/``solve_with``/``value``/``core``/``stats`` — keeping the
parts above the CNF level (scope selectors, DIMACS validation, core
filtering) in Python where they are cheap, and delegating the search
hot path to C.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from typing import List, Optional, Sequence

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

_SOURCE = os.path.join(os.path.dirname(__file__), "satcore.c")
_LIB_SENTINEL = object()
_LIB = _LIB_SENTINEL


def _cache_dir() -> str:
    override = os.environ.get("REPRO_SATCORE_CACHE")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-satcore-{uid}")


def _build() -> Optional[str]:
    """Compile satcore.c into the cache dir; return the .so path."""
    compiler = None
    for name in ("cc", "gcc", "clang"):
        compiler = shutil.which(name)
        if compiler:
            break
    if not compiler:
        return None
    try:
        with open(_SOURCE, "rb") as fh:
            source = fh.read()
    except OSError:
        return None
    key = hashlib.sha256(source + platform.machine().encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"satcore-{key}.so")
    if os.path.exists(lib_path):
        return lib_path
    tmp = None
    try:
        os.makedirs(cache, exist_ok=True)
        # Unique temp name + atomic rename: concurrent builders race
        # benignly (last writer wins, all produce identical output),
        # and no loader can ever observe a half-written .so at
        # lib_path.  The finally-unlink keeps a failed or timed-out
        # compile from leaking its temp file into the cache dir.
        fd, tmp = tempfile.mkstemp(suffix=".so.tmp", dir=cache)
        os.close(fd)
        result = subprocess.run(
            [compiler, "-O2", "-std=c99", "-fPIC", "-shared", "-o", tmp, _SOURCE],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            return None
        os.replace(tmp, lib_path)
        tmp = None
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load() -> Optional[ctypes.CDLL]:
    """Build (if needed) and load the C core; None when unavailable."""
    global _LIB
    if _LIB is not _LIB_SENTINEL:
        return _LIB
    _LIB = None
    lib_path = _build()
    if lib_path is not None:
        try:
            lib = ctypes.CDLL(lib_path)
            _bind(lib)
            _LIB = lib
        except OSError:
            _LIB = None
    return _LIB


def _bind(lib: ctypes.CDLL) -> None:
    i32 = ctypes.c_int32
    p32 = ctypes.POINTER(ctypes.c_int32)
    h = ctypes.c_void_p
    lib.sat_new.restype = h
    lib.sat_new.argtypes = []
    lib.sat_free.restype = None
    lib.sat_free.argtypes = [h]
    lib.sat_new_var.restype = i32
    lib.sat_new_var.argtypes = [h]
    lib.sat_mark_selector.restype = None
    lib.sat_mark_selector.argtypes = [h, i32]
    lib.sat_add_clause.restype = ctypes.c_int
    lib.sat_add_clause.argtypes = [h, p32, i32]
    lib.sat_gc_lit.restype = None
    lib.sat_gc_lit.argtypes = [h, i32]
    lib.sat_solve.restype = ctypes.c_int
    lib.sat_solve.argtypes = [h, p32, i32, ctypes.c_int64]
    lib.sat_model_val.restype = i32
    lib.sat_model_val.argtypes = [h, i32]
    lib.sat_has_model.restype = ctypes.c_int
    lib.sat_has_model.argtypes = [h]
    lib.sat_core_len.restype = i32
    lib.sat_core_len.argtypes = [h]
    lib.sat_core_get.restype = None
    lib.sat_core_get.argtypes = [h, p32]
    lib.sat_stat.restype = ctypes.c_int64
    lib.sat_stat.argtypes = [h, ctypes.c_int]


class NativeSatSolver:
    """Drop-in :class:`repro.smt.sat.SatSolver` backed by the C core."""

    @staticmethod
    def available() -> bool:
        return load() is not None

    def __init__(self):
        lib = load()
        if lib is None:
            raise RuntimeError("native SAT core unavailable (no C compiler?)")
        self._lib = lib
        self._h = lib.sat_new()
        self.nvars = 0
        self._scopes: List[int] = []
        self._selector_vars: set = set()
        self.model: List[Optional[bool]] = []
        self.core: List[int] = []
        self._ok = True
        # Optional telemetry sink (repro.obs.SolverEventSink).  The C
        # core cannot call back mid-search, so solve() synthesizes
        # post-solve tick events from the counter deltas instead.
        self.events = None

    def __del__(self):
        h = getattr(self, "_h", None)
        if h:
            self._lib.sat_free(h)
            self._h = None

    # -- variables and clauses ----------------------------------------
    def new_var(self) -> int:
        self.nvars = int(self._lib.sat_new_var(self._h))
        return self.nvars

    def _check_lits(self, lits: Sequence[int]) -> None:
        nvars = self.nvars
        for signed in lits:
            v = signed if signed >= 0 else -signed
            if v == 0 or v > nvars:
                raise ValueError(f"unknown variable in literal {signed}")

    def add_clause(self, signed_lits, permanent: bool = False) -> bool:
        if not self._ok:
            return False
        lits = list(signed_lits)
        if not permanent and self._scopes:
            lits.append(-self._scopes[-1])
        self._check_lits(lits)
        arr = (ctypes.c_int32 * max(len(lits), 1))(*lits)
        result = self._lib.sat_add_clause(self._h, arr, len(lits))
        if not result:
            self._ok = False
        return bool(result)

    # -- assertion scopes ---------------------------------------------
    def push(self) -> int:
        sel = self.new_var()
        self._lib.sat_mark_selector(self._h, sel)
        self._scopes.append(sel)
        self._selector_vars.add(sel)
        return sel

    def pop(self) -> None:
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        sel = self._scopes.pop()
        self.add_clause([-sel], permanent=True)
        self._lib.sat_gc_lit(self._h, -sel)

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    # -- solving -------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (), max_conflicts=None) -> str:
        self.core = []
        if not self._ok:
            return UNSAT
        assume = list(self._scopes) + [int(a) for a in assumptions]
        self._check_lits(assume)
        arr = (ctypes.c_int32 * max(len(assume), 1))(*assume)
        budget = -1 if max_conflicts is None else int(max_conflicts)
        events = self.events
        if events is not None:
            stat, h = self._lib.sat_stat, self._h
            before = (int(stat(h, 6)), int(stat(h, 8)), int(stat(h, 9)))
        result = self._lib.sat_solve(self._h, arr, len(assume), budget)
        if events is not None:
            after = (int(stat(h, 6)), int(stat(h, 8)), int(stat(h, 9)))
            events.ticks(
                restarts=after[0] - before[0],
                subsumed=after[1] - before[1],
                strengthened=after[2] - before[2],
            )
        if result == 1:
            lib, h = self._lib, self._h
            self.model = [None] + [
                bool(lib.sat_model_val(h, v)) for v in range(1, self.nvars + 1)
            ]
            return SAT
        if result == 2:
            return UNKNOWN
        ncore = self._lib.sat_core_len(self._h)
        if ncore:
            buf = (ctypes.c_int32 * ncore)()
            self._lib.sat_core_get(self._h, buf)
            selectors = self._selector_vars
            self.core = [int(q) for q in buf if abs(q) not in selectors]
        return UNSAT

    def solve_with(self, assumptions: Sequence[int] = (), **kw) -> str:
        return self.solve(assumptions, **kw)

    def value(self, var: int) -> Optional[bool]:
        if not self.model:
            return None
        return self.model[abs(var)]

    # -- statistics ----------------------------------------------------
    @property
    def conflicts(self) -> int:
        return int(self._lib.sat_stat(self._h, 3))

    @property
    def decisions(self) -> int:
        return int(self._lib.sat_stat(self._h, 4))

    @property
    def propagations(self) -> int:
        return int(self._lib.sat_stat(self._h, 5))

    @property
    def restarts(self) -> int:
        return int(self._lib.sat_stat(self._h, 6))

    def stats(self) -> dict:
        stat = self._lib.sat_stat
        h = self._h
        return {
            "vars": self.nvars,
            "clauses": int(stat(h, 1)),
            "learnts": int(stat(h, 2)),
            "conflicts": int(stat(h, 3)),
            "decisions": int(stat(h, 4)),
            "propagations": int(stat(h, 5)),
            "restarts": int(stat(h, 6)),
            "learned": int(stat(h, 7)),
            "subsumed": int(stat(h, 8)),
            "strengthened": int(stat(h, 9)),
            "scopes": len(self._scopes),
        }
