"""The event vocabulary of the discrete-timestep network model.

The paper models network behaviour as a sequence of discrete timesteps,
each carrying a single event chosen by a *scheduling oracle* (§3): a
packet delivery, a middlebox processing step, a new packet entering the
network, a failure, or a recovery.  Searching over all assignments of
the per-timestep event variables below is exactly searching over all
oracle schedules.

We collapse the paper's ``snd``/``rcv`` pair into one ``SEND`` event
(sender, receiver, packet): the paper's axiom "every receive has an
earlier matching send" then holds by construction, and the total order
of timesteps preserves the oracle's freedom to interleave.

Event kinds:

* ``SEND`` — ``frm`` transmits packet ``pkt`` to ``to`` over a link,
* ``FAIL`` — node ``frm`` fails,
* ``RECOVER`` — node ``frm`` recovers,
* ``NOOP`` — nothing happens (lets shorter schedules embed in a
  fixed-depth unrolling).
"""

from __future__ import annotations

from typing import List

from ..smt import And, EnumConst, EnumSort, EnumVar, Eq, Term

__all__ = ["EventKind", "EventVars", "EVENT_KINDS"]


class EventKind:
    SEND = "send"
    FAIL = "fail"
    RECOVER = "recover"
    NOOP = "noop"


EVENT_KINDS = (EventKind.SEND, EventKind.FAIL, EventKind.RECOVER, EventKind.NOOP)


class EventVars:
    """The four event variables of one timestep."""

    def __init__(self, ns: str, t: int, kind_sort: EnumSort, node_sort: EnumSort,
                 pkt_sort: EnumSort):
        self.t = t
        self.kind = EnumVar(f"{ns}:t{t}.kind", kind_sort)
        self.frm = EnumVar(f"{ns}:t{t}.frm", node_sort)
        self.to = EnumVar(f"{ns}:t{t}.to", node_sort)
        self.pkt = EnumVar(f"{ns}:t{t}.pkt", pkt_sort)
        self._kind_sort = kind_sort
        self._node_sort = node_sort
        self._pkt_sort = pkt_sort

    # ------------------------------------------------------------------
    # Predicate builders
    # ------------------------------------------------------------------
    def is_kind(self, kind: str) -> Term:
        return Eq(self.kind, EnumConst(self._kind_sort, kind))

    @property
    def is_send(self) -> Term:
        return self.is_kind(EventKind.SEND)

    @property
    def is_noop(self) -> Term:
        return self.is_kind(EventKind.NOOP)

    def frm_is(self, node: str) -> Term:
        return Eq(self.frm, EnumConst(self._node_sort, node))

    def to_is(self, node: str) -> Term:
        return Eq(self.to, EnumConst(self._node_sort, node))

    def pkt_is(self, index: int) -> Term:
        return Eq(self.pkt, EnumConst(self._pkt_sort, index))

    def snd(self, frm: str, to: str, pkt_index: int) -> Term:
        """This timestep is exactly ``snd(frm, to, p)`` from the paper."""
        return And(
            self.is_send, self.frm_is(frm), self.to_is(to), self.pkt_is(pkt_index)
        )

    def fail_of(self, node: str) -> Term:
        return And(self.is_kind(EventKind.FAIL), self.frm_is(node))

    def recover_of(self, node: str) -> Term:
        return And(self.is_kind(EventKind.RECOVER), self.frm_is(node))


def make_kind_sort(ns: str) -> EnumSort:
    return EnumSort(f"{ns}:evkind", EVENT_KINDS)


def make_events(ns: str, depth: int, kind_sort: EnumSort, node_sort: EnumSort,
                pkt_sort: EnumSort) -> List[EventVars]:
    return [EventVars(ns, t, kind_sort, node_sort, pkt_sort) for t in range(depth)]
