"""The VMN network encoding: nodes, events, axioms.

This module turns a :class:`VerificationNetwork` — end hosts, middlebox
instances, and the transfer rules of the collapsed static datapath —
into the logical formula the paper describes in §3: quantified axioms
for middlebox and network behaviour, grounded over a bounded number of
discrete timesteps, with the classification and scheduling oracles left
as free variables for the solver.

Key design points, mirroring the paper:

* **History-defined state.**  The paper's firewall axiom defines
  ``established(flow(p))`` as "a permitted packet of the flow was
  received since the last failure" — state is a predicate over event
  history, not a mutable cell.  We encode all middlebox state this way,
  with linear-size recurrences over timesteps (no frame axioms).

* **Pseudo-node Ω.**  All sends go to Ω; Ω delivers per the transfer
  rules, and only with justification ("Ω previously received this
  packet from one of the rule's ingress nodes"), which is exactly the
  paper's Ω axiom shape and what enforces middlebox pipelines.

* **Oracles as variables.**  The scheduling oracle is the per-timestep
  event variables; the classification oracle is a family of
  uninterpreted functions over packet fields (:meth:`ModelContext.classify`).

* **Failures.**  ``FAIL``/``RECOVER`` events for middleboxes, bounded by
  a failure budget; static-datapath failures are modelled by verifying
  against a different set of transfer rules (paper §3.5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..smt import (
    BOOL,
    And,
    BoolVar,
    EnumConst,
    EnumSort,
    Eq,
    Implies,
    Not,
    Or,
    Term,
    UFunc,
    at_most_k,
)
from .events import EventKind, EventVars, make_events, make_kind_sort
from .packets import PacketSchema, SymPacket
from .rules import TransferRule

__all__ = [
    "OMEGA",
    "VerificationNetwork",
    "ModelContext",
    "NetworkSMTModel",
    "RuleGuards",
    "fresh_ns",
]

#: Name of the pseudo-node representing the static datapath (paper's Ω).
OMEGA = "<net>"

_ns_counter = itertools.count()


def fresh_ns(prefix: str = "vmn") -> str:
    """A unique namespace for one verification problem's declarations."""
    return f"{prefix}{next(_ns_counter)}"


@dataclass(frozen=True)
class VerificationNetwork:
    """The collapsed network a single verification run reasons about.

    ``middleboxes`` hold objects implementing the middlebox-model
    protocol (see :mod:`repro.mboxes.base`): a ``name``, an
    ``emission_axiom(ctx, ev)`` constraining the steps where the box
    sends, and ``global_axioms(ctx)``.
    """

    hosts: Tuple[str, ...]
    middleboxes: Tuple[object, ...] = ()
    rules: Tuple[TransferRule, ...] = ()
    extra_addresses: Tuple[str, ...] = ()
    allow_spoofing: bool = False

    @property
    def mbox_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.middleboxes)

    @property
    def node_names(self) -> Tuple[str, ...]:
        return self.hosts + self.mbox_names + (OMEGA,)

    @property
    def addresses(self) -> Tuple[str, ...]:
        return self.hosts + self.mbox_names + self.extra_addresses

    def mbox(self, name: str):
        for m in self.middleboxes:
            if m.name == name:
                return m
        raise KeyError(f"no middlebox named {name!r}")


class RuleGuards:
    """Assumption guards over a network's protective configuration units.

    The unsat-core blame probe (:mod:`repro.provenance.blame`) builds a
    network model where every unit of *protection* — a deny-list pair,
    a whitelist policy, the steering path towards a destination — is
    conditioned on a fresh boolean guard.  Assuming every guard **true**
    reproduces the original semantics exactly; leaving a guard free
    *relaxes* its unit (the deny pair is deleted, the whitelist permits
    everything, Ω may bypass the destination's chain).  The unsat core
    of "violation + all guards" then names exactly the protections the
    verdict depends on.

    Guards are created lazily, keyed by a deterministic label, so the
    guard set — and with it the blame output — is a pure function of
    the network configuration.  Labels:

    * ``rule:<box>:deny:<a>-><b>`` — one deny-list pair,
    * ``policy:<box>:whitelist``   — a box's entire allow-list,
    * ``path:<dest>``              — the steering path protecting
      ``dest`` (relaxed: Ω may deliver to ``dest`` from any sender).

    Guarded models exist only inside dedicated blame probes — they are
    never pooled, cached, or fingerprinted — so production encodings
    pay nothing.
    """

    def __init__(self, ns: Optional[str] = None):
        self.ns = ns if ns is not None else fresh_ns("guard")
        self._by_label: "Dict[str, Term]" = {}
        self._labels: "Dict[int, str]" = {}

    def guard(self, label: str) -> Term:
        term = self._by_label.get(label)
        if term is None:
            term = BoolVar(f"{self.ns}:guard:{label}")
            self._by_label[label] = term
            self._labels[id(term)] = label
        return term

    def rule_guard(self, owner: str, kind: str, a: str, b: str) -> Term:
        return self.guard(f"rule:{owner}:{kind}:{a}->{b}")

    def policy_guard(self, owner: str) -> Term:
        return self.guard(f"policy:{owner}:whitelist")

    def path_guard(self, dest: str) -> Term:
        return self.guard(f"path:{dest}")

    def assumptions(self) -> List[Term]:
        """Every guard created so far, in sorted-label order (the
        deterministic candidate order the core minimizer scans)."""
        return [self._by_label[label] for label in sorted(self._by_label)]

    def label_of(self, term: Term) -> str:
        return self._labels[id(term)]

    def labels(self) -> List[str]:
        return sorted(self._by_label)

    def __len__(self) -> int:
        return len(self._by_label)


class ModelContext:
    """Shared helpers middlebox models and invariants build axioms from.

    All history predicates are defined by linear recurrences over
    timesteps and cached, so the resulting term DAG (and hence the CNF)
    stays linear in the unrolling depth.
    """

    def __init__(self, net: VerificationNetwork, schema: PacketSchema,
                 events: List[EventVars], node_sort: EnumSort, ns: str,
                 free_init: bool = False,
                 rule_guards: Optional[RuleGuards] = None):
        self.net = net
        self.schema = schema
        self.events = events
        self.node_sort = node_sort
        self.ns = ns
        self.depth = len(events)
        self.packets: List[SymPacket] = schema.packets
        self.free_init = free_init
        #: Blame-probe guards (``None`` outside dedicated probes).
        #: Middlebox models read this duck-typed via
        #: ``getattr(ctx, "rule_guards", None)`` — see
        #: :func:`repro.mboxes.base.acl_pairs_term`.
        self.rule_guards = rule_guards
        #: Structural key -> the boolean variable standing in for the
        #: predicate's value at time 0 (only populated in free-init
        #: mode).  Keys are ``("rcv", node, p, since_fail)``,
        #: ``("snt", node, p)`` and ``("failed", node)`` — stable across
        #: model rebuilds of the same network, which is what lets proof
        #: certificates be re-checked on an independent encoding.
        self.init_atoms: "Dict[tuple, Term]" = {}
        self._rcv_cache: Dict[tuple, Term] = {}
        self._sent_net_cache: Dict[tuple, Term] = {}
        self._failed_cache: Dict[tuple, Term] = {}
        self._oracles: Dict[str, UFunc] = {}
        self.extra_axioms: List[Term] = []

    # ------------------------------------------------------------------
    # Sorts and constants
    # ------------------------------------------------------------------
    def addr(self, name: str) -> Term:
        return self.schema.addr(name)

    def node(self, name: str) -> Term:
        return EnumConst(self.node_sort, name)

    # ------------------------------------------------------------------
    # Event history predicates
    # ------------------------------------------------------------------
    def _init_atom(self, key: tuple) -> Term:
        """The free boolean standing in for a history predicate at
        time 0 (free-init mode): the "arbitrary starting state" the
        unbounded proof engines quantify over."""
        atom = self.init_atoms.get(key)
        if atom is None:
            atom = BoolVar(f"{self.ns}:init:" + ":".join(map(str, key)))
            self.init_atoms[key] = atom
        return atom

    def history_at(self, key: tuple, t: int) -> Term:
        """The history predicate named by an init-atom ``key`` at time
        ``t`` — the "next-state function" of the proof engines' state
        vector (at ``t=0`` it is the init atom itself)."""
        kind = key[0]
        if kind == "rcv":
            _, node, p_index, since_fail = key
            return self.rcv_before(node, p_index, t, since_fail=since_fail)
        if kind == "snt":
            _, node, p_index = key
            return self.sent_to_net_before(node, p_index, t)
        if kind == "failed":
            return self.failed_at(key[1], t)
        raise KeyError(f"unknown state-atom key {key!r}")

    def rcv_at(self, node: str, p_index: int, t: int) -> Term:
        """Event ``t`` delivers packet ``p_index`` to ``node``."""
        ev = self.events[t]
        return And(ev.is_send, ev.to_is(node), ev.pkt_is(p_index))

    def rcv_before(self, node: str, p_index: int, t: int,
                   since_fail: bool = False) -> Term:
        """``node`` received packet ``p_index`` at some step before ``t``.

        With ``since_fail=True`` the receive must have happened while the
        node was up, with no failure of the node since — the predicate to
        use for middlebox *state* (which failure clears), per the paper's
        ``established`` axiom.
        """
        key = (node, p_index, t, since_fail)
        cached = self._rcv_cache.get(key)
        if cached is not None:
            return cached
        if t <= 0:
            term = (
                self._init_atom(("rcv", node, p_index, since_fail))
                if self.free_init
                else Or()
            )
        else:
            prev = self.rcv_before(node, p_index, t - 1, since_fail)
            ev = self.events[t - 1]
            got = self.rcv_at(node, p_index, t - 1)
            if since_fail:
                got = And(got, Not(self.failed_at(node, t - 1)))
                term = Or(And(prev, Not(ev.fail_of(node))), got)
            else:
                term = Or(prev, got)
        self._rcv_cache[key] = term
        return term

    def sent_to_net_before(self, node: str, p_index: int, t: int) -> Term:
        """``node`` handed packet ``p_index`` to Ω at some step before ``t``."""
        key = (node, p_index, t)
        cached = self._sent_net_cache.get(key)
        if cached is not None:
            return cached
        if t <= 0:
            term = (
                self._init_atom(("snt", node, p_index))
                if self.free_init
                else Or()
            )
        else:
            prev = self.sent_to_net_before(node, p_index, t - 1)
            term = Or(prev, self.events[t - 1].snd(node, OMEGA, p_index))
        self._sent_net_cache[key] = term
        return term

    def failed_at(self, node: str, t: int) -> Term:
        """``node`` is down at step ``t`` (events strictly before ``t``)."""
        key = (node, t)
        cached = self._failed_cache.get(key)
        if cached is not None:
            return cached
        if t <= 0:
            term = (
                self._init_atom(("failed", node))
                if self.free_init
                else Or()
            )
        else:
            prev = self.failed_at(node, t - 1)
            ev = self.events[t - 1]
            term = And(Or(prev, ev.fail_of(node)), Not(ev.recover_of(node)))
        self._failed_cache[key] = term
        return term

    def delivered_to_before(self, node: str, p_index: int, t: int) -> Term:
        """Alias of :meth:`rcv_before` kept for invariant readability."""
        return self.rcv_before(node, p_index, t)

    # ------------------------------------------------------------------
    # Classification oracle
    # ------------------------------------------------------------------
    def classify(self, class_name: str, p: SymPacket) -> Term:
        """Abstract packet class ``class_name`` applied to packet ``p``.

        The oracle is an uninterpreted predicate over all packet fields:
        the solver picks its value freely (that is the point — we verify
        the configuration for *every* behaviour of the classifier),
        subject to congruence (field-identical packets classify alike)
        and any output constraints a model adds via :meth:`add_axiom`.
        """
        fn = self._oracle(class_name, range_sort=BOOL)
        return fn(p.src, p.dst, p.sport, p.dport, p.origin, p.tag)

    def oracle_fn(self, name: str, range_sort) -> UFunc:
        """An oracle function over the 4-tuple flow key (NATs, LBs)."""
        key = f"flow:{name}"
        fn = self._oracles.get(key)
        if fn is None:
            s = self.schema
            fn = UFunc(
                f"{self.ns}:{name}",
                (s.addr_sort, s.addr_sort, s.port_sort, s.port_sort),
                range_sort,
            )
            self._oracles[key] = fn
        return fn

    def _oracle(self, name: str, range_sort) -> UFunc:
        fn = self._oracles.get(name)
        if fn is None:
            s = self.schema
            fn = UFunc(
                f"{self.ns}:{name}",
                (s.addr_sort, s.addr_sort, s.port_sort, s.port_sort,
                 s.addr_sort, s.tag_sort),
                range_sort,
            )
            self._oracles[name] = fn
        return fn

    def add_axiom(self, term: Term) -> None:
        """Register an additional global axiom (oracle output constraints,
        NAT port-injectivity, ...)."""
        self.extra_axioms.append(term)

    def oracle_axioms(self) -> List[Term]:
        axioms: List[Term] = []
        for fn in self._oracles.values():
            axioms.extend(fn.congruence_axioms())
        return axioms

    def at_depth(self, depth: int) -> "ModelContext":
        """A read-through view of this context clamped to ``depth``.

        Invariants ground their violation over ``range(ctx.depth)``;
        handing them a clamped view builds "violated within the first
        ``depth`` steps" against the *same* event variables and caches,
        which is how the warm BMC driver re-asks the property per depth
        without re-encoding anything.
        """
        if depth == self.depth:
            return self
        if not 0 <= depth <= self.depth:
            raise ValueError(f"depth {depth} outside [0, {self.depth}]")
        return _DepthView(self, depth)


class _DepthView:
    """A shallow proxy of :class:`ModelContext` with a smaller depth.

    Everything except ``depth`` delegates to the underlying context, so
    history-predicate caches, oracles, and extra axioms stay shared.
    """

    def __init__(self, ctx: ModelContext, depth: int):
        self._ctx = ctx
        self.depth = depth

    def __getattr__(self, name):
        return getattr(self._ctx, name)

    def at_depth(self, depth: int) -> "ModelContext":
        return self._ctx.at_depth(depth)


class NetworkSMTModel:
    """Builds the grounded formula for one (network, depth) pair."""

    def __init__(
        self,
        net: VerificationNetwork,
        n_packets: int,
        depth: int,
        failure_budget: int = 0,
        n_ports: int = 6,
        n_tags: int = 4,
        ns: Optional[str] = None,
        free_init: bool = False,
        rule_guards: Optional[RuleGuards] = None,
    ):
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.net = net
        self.depth = depth
        self.failure_budget = failure_budget
        self.free_init = free_init
        self.ns = ns if ns is not None else fresh_ns()
        self.schema = PacketSchema(
            self.ns, net.addresses, n_packets, n_ports=n_ports, n_tags=n_tags
        )
        self.node_sort = EnumSort(f"{self.ns}:node", net.node_names)
        kind_sort = make_kind_sort(self.ns)
        self.events = make_events(
            self.ns, depth, kind_sort, self.node_sort, self.schema.pkt_sort
        )
        self.ctx = ModelContext(net, self.schema, self.events, self.node_sort,
                                self.ns, free_init=free_init,
                                rule_guards=rule_guards)
        self._step_cache: Dict[int, List[Term]] = {}
        self._base_cache: Optional[List[Term]] = None

    # ------------------------------------------------------------------
    def step_axioms(self, t: int) -> List[Term]:
        """The transition relation of timestep ``t`` (memoized).

        Asserting ``step_axioms(0..k-1)`` plus :meth:`base_axioms`
        constrains the first ``k`` steps exactly as a ``depth=k`` model
        would; the warm BMC driver deepens by asserting one more step,
        never re-encoding the prefix.
        """
        cached = self._step_cache.get(t)
        if cached is not None:
            return cached
        ev = self.events[t]
        out: List[Term] = []
        # Canonical schedules: noops form a suffix.  Sound because a
        # noop changes nothing; it only prunes the oracle's search.
        if t + 1 < self.depth:
            out.append(Implies(ev.is_noop, self.events[t + 1].is_noop))
        out.extend(self._failure_axioms(ev, t, list(self.net.mbox_names)))
        out.extend(self._host_axioms(ev, t))
        out.extend(self._mbox_axioms(ev, t))
        out.append(self._omega_axiom(ev, t))
        out = [a for a in out if a is not None]
        self._step_cache[t] = out
        return out

    def base_axioms(self) -> List[Term]:
        """The step-independent axioms (memoized).

        Failure budget, middlebox global axioms, extra axioms and
        oracle congruence all range over oracle applications and state
        registered while the per-step axioms are built, so this forces
        every step's terms first; the result is valid for any asserted
        prefix (future steps are satisfied by extending with noops).
        """
        if self._base_cache is None:
            for t in range(self.depth):
                self.step_axioms(t)
            out: List[Term] = []
            out.extend(self._failure_budget_axioms())
            for m in self.net.middleboxes:
                out.extend(m.global_axioms(self.ctx))
            out.extend(self.ctx.extra_axioms)
            out.extend(self.ctx.oracle_axioms())
            self._base_cache = [a for a in out if a is not None]
        return self._base_cache

    def axioms(self) -> List[Term]:
        """All axioms of the network model (invariant not included)."""
        out: List[Term] = []
        for t in range(self.depth):
            out.extend(self.step_axioms(t))
        out.extend(self.base_axioms())
        return out

    # ------------------------------------------------------------------
    def _failure_axioms(self, ev: EventVars, t: int, failable: List[str]) -> List[Term]:
        ctx = self.ctx
        out: List[Term] = []
        is_fail = ev.is_kind(EventKind.FAIL)
        is_recover = ev.is_kind(EventKind.RECOVER)
        if not failable or self.failure_budget == 0:
            out.append(Not(is_fail))
            out.append(Not(is_recover))
            return out
        out.append(Implies(is_fail, Or(*(ev.frm_is(n) for n in failable))))
        out.append(Implies(is_recover, Or(*(ev.frm_is(n) for n in failable))))
        for n in failable:
            # No double-failures, no spontaneous recoveries.
            out.append(Implies(And(is_fail, ev.frm_is(n)), Not(ctx.failed_at(n, t))))
            out.append(Implies(And(is_recover, ev.frm_is(n)), ctx.failed_at(n, t)))
        return out

    def _failure_budget_axioms(self) -> List[Term]:
        if self.failure_budget == 0 or not self.net.mbox_names:
            return []
        fails = [ev.is_kind(EventKind.FAIL) for ev in self.events]
        return [at_most_k(fails, self.failure_budget)]

    # ------------------------------------------------------------------
    def _host_axioms(self, ev: EventVars, t: int) -> List[Term]:
        ctx = self.ctx
        out: List[Term] = []
        for h in self.net.hosts:
            sending = And(ev.is_send, ev.frm_is(h))
            per_pkt: List[Term] = []
            for p in ctx.packets:
                constraints: List[Term] = []
                if not self.net.allow_spoofing:
                    constraints.append(Eq(p.src, ctx.addr(h)))
                constraints.append(self._origin_provenance(h, p, t))
                per_pkt.append(Implies(ev.pkt_is(p.index), And(*constraints)))
            out.append(Implies(sending, And(ev.to_is(OMEGA), *per_pkt)))
        return out

    def _origin_provenance(self, h: str, p: SymPacket, t: int) -> Term:
        """A host can only emit data it owns or previously received.

        Requests are free (asking for content does not require having
        it); data-bearing packets must carry the host's own data or data
        from a packet the host received earlier.  This is what makes the
        data-isolation invariants of §5.2 meaningful.
        """
        ctx = self.ctx
        received_origin = [
            And(
                ctx.rcv_before(h, q.index, t),
                Eq(q.origin, p.origin),
                Not(q.is_request),
            )
            for q in ctx.packets
        ]
        return Or(
            p.is_request,
            Eq(p.origin, ctx.addr(h)),
            *received_origin,
        )

    # ------------------------------------------------------------------
    def _mbox_axioms(self, ev: EventVars, t: int) -> List[Term]:
        out: List[Term] = []
        for m in self.net.middleboxes:
            sending = And(ev.is_send, ev.frm_is(m.name))
            # The emission axiom constrains ev.to itself: Ω by default,
            # or a direct-link next hop for tunnelling branches.
            out.append(Implies(sending, m.emission_axiom(self.ctx, ev)))
        return out

    # ------------------------------------------------------------------
    def _omega_axiom(self, ev: EventVars, t: int) -> Term:
        """Ω forwards per the transfer rules, with ingress justification."""
        ctx = self.ctx
        acting = ev.frm_is(OMEGA)
        per_pkt: List[Term] = []
        senders = [n for n in self.net.node_names if n != OMEGA]
        for p in ctx.packets:
            branches: List[Term] = []
            for rule in self.net.rules:
                # Rules are a union relation: any rule whose header match
                # and ingress justification hold may deliver.  Producers
                # of rule sets (the VeriFlow-style transfer computation,
                # the scenario builders) keep (ingress, header) matches
                # disjoint, so delivery is deterministic in practice;
                # overlapping rules mean nondeterministic delivery, a
                # sound over-approximation for violation finding.
                match = rule.match.term(p)
                ingress = senders if rule.from_nodes is None else sorted(rule.from_nodes)
                justification = Or(
                    *(ctx.sent_to_net_before(n, p.index, t) for n in ingress)
                )
                branches.append(And(match, ev.to_is(rule.to), justification))
            guards = ctx.rule_guards
            if guards is not None:
                # Blame-probe path relaxation: with ``path:<d>`` relaxed
                # (guard free), Ω may deliver any packet to ``d`` given
                # any-sender justification — the "steering towards d was
                # deleted/bypassed" hypothesis the unsat core tests.
                any_sender = Or(
                    *(ctx.sent_to_net_before(n, p.index, t) for n in senders)
                )
                for d in self.net.hosts:
                    branches.append(
                        And(Not(guards.path_guard(d)), ev.to_is(d), any_sender)
                    )
            per_pkt.append(Implies(ev.pkt_is(p.index), Or(*branches)))
        return Implies(acting, And(ev.is_send, *per_pkt))
