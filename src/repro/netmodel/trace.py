"""Counterexample traces decoded from satisfying assignments.

When the solver finds a satisfying assignment, it has constructed a
schedule of events (the scheduling oracle's choices) plus concrete
packet contents (the classification oracle's choices) that violates the
invariant.  :func:`decode_trace` reads those choices back out of the
model into a human-readable :class:`Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..smt import Model
from .events import EventKind
from .packets import REQUEST_TAG

__all__ = ["PacketValues", "TraceEvent", "Trace", "decode_trace"]


@dataclass(frozen=True)
class PacketValues:
    """Concrete field values of one symbolic packet in the model."""

    index: int
    src: str
    dst: str
    sport: int
    dport: int
    origin: str
    tag: str

    def __str__(self) -> str:
        kind = "request" if self.tag == REQUEST_TAG else f"data[{self.tag}]"
        return (
            f"p{self.index}: {self.src}:{self.sport} -> {self.dst}:{self.dport} "
            f"{kind} origin={self.origin}"
        )


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled event."""

    t: int
    kind: str
    frm: str
    to: Optional[str]
    pkt: Optional[int]

    def __str__(self) -> str:
        if self.kind == EventKind.SEND:
            return f"[{self.t}] {self.frm} sends p{self.pkt} to {self.to}"
        if self.kind == EventKind.FAIL:
            return f"[{self.t}] {self.frm} FAILS"
        if self.kind == EventKind.RECOVER:
            return f"[{self.t}] {self.frm} recovers"
        return f"[{self.t}] (noop)"


@dataclass
class Trace:
    """An event schedule plus the packets it mentions."""

    events: List[TraceEvent]
    packets: Dict[int, PacketValues]

    @property
    def used_packet_indices(self) -> List[int]:
        return sorted(
            {e.pkt for e in self.events if e.pkt is not None and e.kind == EventKind.SEND}
        )

    def __str__(self) -> str:
        lines = ["counterexample trace:"]
        for idx in self.used_packet_indices:
            lines.append(f"  {self.packets[idx]}")
        for e in self.events:
            lines.append(f"  {e}")
        return "\n".join(lines)


def decode_trace(model: Model, smt_model) -> Trace:
    """Read the schedule and packet contents out of a sat model.

    ``smt_model`` is the :class:`repro.netmodel.system.NetworkSMTModel`
    whose variables the model assigns.  Trailing noops are trimmed.
    """
    events: List[TraceEvent] = []
    for ev in smt_model.events:
        kind = model[ev.kind]
        if kind == EventKind.NOOP:
            break  # noops are canonically a suffix
        frm = model[ev.frm]
        to = model[ev.to] if kind == EventKind.SEND else None
        pkt = model[ev.pkt] if kind == EventKind.SEND else None
        events.append(TraceEvent(t=ev.t, kind=kind, frm=frm, to=to, pkt=pkt))

    packets: Dict[int, PacketValues] = {}
    for p in smt_model.schema.packets:
        packets[p.index] = PacketValues(
            index=p.index,
            src=model[p.src],
            dst=model[p.dst],
            sport=model[p.sport],
            dport=model[p.dport],
            origin=model[p.origin],
            tag=model[p.tag],
        )
    return Trace(events=events, packets=packets)
