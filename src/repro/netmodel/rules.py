"""Transfer-function rules: the static datapath collapsed to one node.

Following the paper (§3.5), VMN models the entire static-datapath
portion of the network as a single pseudo-node Ω whose behaviour is
given by a *transfer function* computed VeriFlow-style from the topology
and forwarding tables of a particular failure scenario
(:mod:`repro.network.transfer` does that computation).

Here a transfer function is an ordered, first-match list of
:class:`TransferRule`.  A rule says: packets matching ``match`` that
entered the network from one of ``from_nodes`` are delivered to ``to``.
``from_nodes`` is how pipeline placement survives the collapse — "Ω
delivers p to the server only if it received p from the IDPS" is the
axiom shape the paper gives for Ω (§3.5), and it is what forces traffic
through middlebox chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..smt import And, Eq, Or, Term
from .packets import SymPacket

__all__ = ["HeaderMatch", "TransferRule", "rule_mentions", "rules_delta"]


def _freeze(values) -> Optional[FrozenSet]:
    if values is None:
        return None
    return frozenset(values)


@dataclass(frozen=True)
class HeaderMatch:
    """A conjunction of per-field membership tests; ``None`` = wildcard."""

    src: Optional[FrozenSet[str]] = None
    dst: Optional[FrozenSet[str]] = None
    sport: Optional[FrozenSet[int]] = None
    dport: Optional[FrozenSet[int]] = None
    origin: Optional[FrozenSet[str]] = None

    @staticmethod
    def of(src=None, dst=None, sport=None, dport=None, origin=None) -> "HeaderMatch":
        """Convenience constructor accepting any iterables (or None)."""
        return HeaderMatch(
            src=_freeze(src),
            dst=_freeze(dst),
            sport=_freeze(sport),
            dport=_freeze(dport),
            origin=_freeze(origin),
        )

    def term(self, p: SymPacket) -> Term:
        """The boolean term testing whether packet ``p`` matches."""
        schema = p.schema
        parts = []
        if self.src is not None:
            parts.append(Or(*(Eq(p.src, schema.addr(a)) for a in sorted(self.src))))
        if self.dst is not None:
            parts.append(Or(*(Eq(p.dst, schema.addr(a)) for a in sorted(self.dst))))
        if self.sport is not None:
            parts.append(
                Or(*(Eq(p.sport, schema.port(n)) for n in sorted(self.sport)))
            )
        if self.dport is not None:
            parts.append(
                Or(*(Eq(p.dport, schema.port(n)) for n in sorted(self.dport)))
            )
        if self.origin is not None:
            parts.append(
                Or(*(Eq(p.origin, schema.addr(a)) for a in sorted(self.origin)))
            )
        return And(*parts)

    def matches_concrete(self, fields: dict) -> bool:
        """Evaluate the match against concrete field values (baselines)."""
        checks = (
            ("src", self.src),
            ("dst", self.dst),
            ("sport", self.sport),
            ("dport", self.dport),
            ("origin", self.origin),
        )
        return all(
            allowed is None or fields[name] in allowed for name, allowed in checks
        )


@dataclass(frozen=True)
class TransferRule:
    """One first-match entry of the collapsed network's transfer function.

    ``from_nodes`` restricts which nodes must have handed the packet to
    Ω for this rule to fire (``None`` = any node).  ``to`` is the
    delivery target.
    """

    match: HeaderMatch
    to: str
    from_nodes: Optional[FrozenSet[str]] = None

    @staticmethod
    def of(match: HeaderMatch, to: str, from_nodes=None) -> "TransferRule":
        return TransferRule(match=match, to=to, from_nodes=_freeze(from_nodes))

    def describe(self) -> str:
        frm = "any" if self.from_nodes is None else "{" + ",".join(sorted(self.from_nodes)) + "}"
        return f"from {frm} -> {self.to}"


# ----------------------------------------------------------------------
# Delta support: comparing the transfer functions of two network
# versions.  Incremental re-verification uses this to find which nodes'
# forwarding behaviour a configuration change actually altered.
# ----------------------------------------------------------------------
def rule_mentions(rule: TransferRule) -> FrozenSet[str]:
    """Every node name a transfer rule refers to (match fields, the
    delivery target, and the ingress restriction)."""
    names = {rule.to}
    for field in (rule.match.src, rule.match.dst, rule.match.origin):
        if field is not None:
            names.update(field)
    if rule.from_nodes is not None:
        names.update(rule.from_nodes)
    return frozenset(names)


def rules_delta(
    old: "tuple[TransferRule, ...]",
    new: "tuple[TransferRule, ...]",
) -> FrozenSet[str]:
    """Node names whose transfer behaviour differs between two rule sets.

    Rules are hashable values, so the symmetric difference of the two
    sets is exactly the rules that appeared, disappeared, or changed;
    the union of their mention sets over-approximates the nodes a
    change can influence.  (Slice-precise impact additionally projects
    both rule sets onto the slice — see
    :mod:`repro.incremental.impact` — because e.g. a new ingress node
    joining a rule's ``from_nodes`` mentions every destination of that
    rule while being invisible to slices that exclude the new node.)
    """
    changed = set(old).symmetric_difference(new)
    names: set = set()
    for rule in changed:
        names.update(rule_mentions(rule))
    return frozenset(names)
