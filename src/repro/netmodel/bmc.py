"""The bounded model-checking driver.

The paper hands Z3 a formula whose satisfying assignments are invariant
violations; we do the same against :mod:`repro.smt`, grounding time to
a bounded unrolling depth.  The default depth comes from the structural
bound argued in DESIGN.md §5: a violation needs at most one emission of
each symbolic packet by each node on its path, because middlebox state
in our model only ever *enables* more behaviour between failures
(hole-punching, cache fills, NAT mappings); failure events add a
constant per failure allowed.

``check`` returns :data:`VIOLATED` with a decoded counterexample trace,
:data:`HOLDS` when the formula is unsatisfiable at the chosen depth, or
:data:`UNKNOWN` when a conflict budget was exhausted (mirroring the
paper's reliance on Z3 timeouts, §3.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..smt import SAT, UNSAT, Solver
from .system import NetworkSMTModel, VerificationNetwork
from .trace import Trace, decode_trace

__all__ = ["VIOLATED", "HOLDS", "UNKNOWN", "CheckResult", "check", "default_depth"]

VIOLATED = "violated"
HOLDS = "holds"
UNKNOWN = "unknown"


@dataclass
class CheckResult:
    """Outcome of one invariant check."""

    status: str
    invariant: object
    depth: int
    n_packets: int
    solve_seconds: float
    trace: Optional[Trace] = None
    stats: dict = field(default_factory=dict)

    @property
    def violated(self) -> bool:
        return self.status == VIOLATED

    @property
    def holds(self) -> bool:
        return self.status == HOLDS

    @property
    def cache_hit(self) -> bool:
        """True when this verdict was served from a result cache."""
        return bool(self.stats.get("cache_hit"))

    def __str__(self) -> str:
        head = f"{self.status.upper()} (depth={self.depth}, {self.solve_seconds:.3f}s)"
        if self.trace is not None:
            return f"{head}\n{self.trace}"
        return head


def default_depth(net: VerificationNetwork, n_packets: int, failure_budget: int) -> int:
    """The structural depth bound from DESIGN.md §5.

    Per packet: one host emission, plus two events (Ω delivery + re-
    emission) per middlebox it can traverse, plus the final delivery.
    Failures and recoveries add two events per allowed failure.
    """
    n_mboxes = len(net.middleboxes)
    return n_packets * (2 * n_mboxes + 2) + 2 * failure_budget + 1


def check(
    net: VerificationNetwork,
    invariant,
    depth: Optional[int] = None,
    n_packets: Optional[int] = None,
    failure_budget: Optional[int] = None,
    max_conflicts: Optional[int] = None,
    n_ports: int = 6,
    n_tags: int = 4,
) -> CheckResult:
    """Check one reachability invariant against one network.

    ``invariant`` is any object with ``violation_term(ctx) -> Term``;
    optional hints ``n_packets_hint`` and ``failure_budget`` on the
    invariant are honoured when the keyword arguments are left ``None``.
    """
    if n_packets is None:
        n_packets = getattr(invariant, "n_packets_hint", 2)
    if failure_budget is None:
        failure_budget = getattr(invariant, "failure_budget", 0)
    if depth is None:
        depth = default_depth(net, n_packets, failure_budget)

    started = time.perf_counter()
    model = NetworkSMTModel(
        net,
        n_packets=n_packets,
        depth=depth,
        failure_budget=failure_budget,
        n_ports=n_ports,
        n_tags=n_tags,
    )
    solver = Solver()
    for axiom in model.axioms():
        solver.add(axiom)
    solver.add(invariant.violation_term(model.ctx))

    result = solver.check(max_conflicts=max_conflicts)
    elapsed = time.perf_counter() - started

    if result == SAT:
        trace = decode_trace(solver.model(), model)
        status = VIOLATED
    elif result == UNSAT:
        trace = None
        status = HOLDS
    else:
        trace = None
        status = UNKNOWN
    return CheckResult(
        status=status,
        invariant=invariant,
        depth=depth,
        n_packets=n_packets,
        solve_seconds=elapsed,
        trace=trace,
        stats=solver.stats(),
    )
