"""The bounded model-checking driver.

The paper hands Z3 a formula whose satisfying assignments are invariant
violations; we do the same against :mod:`repro.smt`, grounding time to
a bounded unrolling depth.  The default depth comes from the structural
bound argued in DESIGN.md §5: a violation needs at most one emission of
each symbolic packet by each node on its path, because middlebox state
in our model only ever *enables* more behaviour between failures
(hole-punching, cache fills, NAT mappings); failure events add a
constant per failure allowed.

Since the solver stack went incremental, every check runs through a
:class:`IncrementalBMC` driver that owns one *warm* solver per network
encoding:

* the step-independent axioms are asserted once at construction,
* the transition relation is asserted one timestep at a time
  (:meth:`IncrementalBMC.extend_to` — steps ``0..k-1`` are never
  re-encoded when deepening to ``k``),
* the property is **assumed**, not asserted
  (``check(assumptions=[violation@k])``), so one solver instance
  answers any invariant at any depth while retaining learned clauses
  across calls.

:class:`SolverPool` keeps warm drivers keyed by the exact encoding
structure; the batch engine leases one driver per slice so all
invariants sharing a slice share a single encoding and its learned
clauses.

``check`` returns :data:`VIOLATED` with a decoded counterexample trace,
:data:`HOLDS` when the formula is unsatisfiable at the chosen depth, or
:data:`UNKNOWN` when a conflict budget was exhausted (mirroring the
paper's reliance on Z3 timeouts, §3.1).  With ``deepen=True`` the
driver walks depths ``1..depth`` on the warm solver and stops at the
first violation; verdicts per depth equal what a from-scratch solve at
that depth concludes.  ``canonical_trace=True`` replaces the raw model
decode with the lexicographically-least violating schedule (computed by
assumption-pinned minimization), which is identical no matter which
solver state produced the verdict — that is what lets the equivalence
tests demand byte-identical traces from the warm and cold paths.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..obs import SOLVER_COUNTER_KEYS, get_registry, get_tracer, solver_counter_snapshot
from ..smt import SAT, UNSAT, EnumConst, Eq, Solver, Term
from .canon import Unfingerprintable, canon
from .events import EventKind
from .system import NetworkSMTModel, VerificationNetwork
from .trace import Trace, decode_trace

__all__ = [
    "VIOLATED",
    "HOLDS",
    "UNKNOWN",
    "CheckResult",
    "IncrementalBMC",
    "SolverPool",
    "SOLVER_COUNTERS",
    "encoding_key",
    "check",
    "default_depth",
]

VIOLATED = "violated"
HOLDS = "holds"
UNKNOWN = "unknown"


@dataclass
class CheckResult:
    """Outcome of one invariant check."""

    status: str
    invariant: object
    depth: int
    n_packets: int
    solve_seconds: float
    trace: Optional[Trace] = None
    stats: dict = field(default_factory=dict)

    @property
    def violated(self) -> bool:
        return self.status == VIOLATED

    @property
    def holds(self) -> bool:
        return self.status == HOLDS

    @property
    def cache_hit(self) -> bool:
        """True when this verdict was served from a result cache."""
        return bool(self.stats.get("cache_hit"))

    def __str__(self) -> str:
        head = f"{self.status.upper()} (depth={self.depth}, {self.solve_seconds:.3f}s)"
        if self.trace is not None:
            return f"{head}\n{self.trace}"
        return head


def default_depth(net: VerificationNetwork, n_packets: int, failure_budget: int) -> int:
    """The structural depth bound from DESIGN.md §5.

    Per packet: one host emission, plus two events (Ω delivery + re-
    emission) per middlebox it can traverse, plus the final delivery.
    Failures and recoveries add two events per allowed failure.
    """
    n_mboxes = len(net.middleboxes)
    return n_packets * (2 * n_mboxes + 2) + 2 * failure_budget + 1


# ----------------------------------------------------------------------
# Warm incremental driver
# ----------------------------------------------------------------------
#: The solver's cumulative work counters, as reported by
#: :meth:`repro.smt.Solver.stats`; per-check stats carry their deltas
#: and ``repro audit --json`` totals them.  The canonical definition
#: lives in :data:`repro.obs.SOLVER_COUNTER_KEYS` (one source of truth
#: for every layer that diffs snapshots — re-exported here for the
#: historical import path); a contract test keeps it in sync with
#: ``SatSolver.stats()``.
SOLVER_COUNTERS = SOLVER_COUNTER_KEYS
_COUNTER_KEYS = SOLVER_COUNTERS


class IncrementalBMC:
    """One warm solver over one network encoding.

    The model's events exist for all ``depth`` timesteps from the
    start; the base (step-independent) axioms are asserted at
    construction and the transition relation is asserted step by step
    as :meth:`check_at` deepens.  Unasserted suffix steps are assumed
    to be noops during each check, so a partial assertion prefix
    decides exactly the ``depth=k`` problem — and since a bounded
    schedule always extends with noops, verdicts match a from-scratch
    encode at that depth.
    """

    def __init__(
        self,
        net: VerificationNetwork,
        n_packets: int,
        depth: int,
        failure_budget: int = 0,
        n_ports: int = 6,
        n_tags: int = 4,
        rule_guards=None,
    ):
        started = time.perf_counter()
        self.net = net
        with get_tracer().span(
            "encode", cat="bmc", depth=depth, n_packets=n_packets
        ):
            self.model = NetworkSMTModel(
                net,
                n_packets=n_packets,
                depth=depth,
                failure_budget=failure_budget,
                n_ports=n_ports,
                n_tags=n_tags,
                rule_guards=rule_guards,
            )
            self.solver = Solver()
            self.asserted_depth = 0
            self.checks = 0
            for axiom in self.model.base_axioms():
                self.solver.add(axiom)
        self.encode_seconds = time.perf_counter() - started

    @property
    def model_depth(self) -> int:
        return self.model.depth

    def counters(self) -> dict:
        """Cumulative solver counters (diff snapshots per check).

        Missing keys read as 0 so an older solver core (e.g. the
        vendored pre-rewrite oracle in ``benchmarks/_sat_reference.py``,
        which predates the inprocessing counters) still satisfies the
        schema.
        """
        return solver_counter_snapshot(self.solver.stats())

    def extend_to(self, k: int) -> None:
        """Assert the transition relation up to step ``k`` (exclusive
        of deeper steps); already-asserted steps are never re-encoded."""
        k = min(k, self.model.depth)
        if k <= self.asserted_depth:
            return
        started = time.perf_counter()
        with get_tracer().span(
            "extend", cat="bmc", from_depth=self.asserted_depth, to_depth=k
        ):
            for t in range(self.asserted_depth, k):
                for axiom in self.model.step_axioms(t):
                    self.solver.add(axiom)
        self.asserted_depth = k
        self.encode_seconds += time.perf_counter() - started

    def assumptions_at(self, invariant, k: int) -> List[Term]:
        """The assumption set deciding ``invariant`` at depth ``k``:
        the violation grounded over the first ``k`` steps, plus noops
        for every deeper timestep (which also keeps decoded traces
        identical to a ``depth=k`` model's)."""
        out = [invariant.violation_term(self.model.ctx.at_depth(k))]
        out.extend(
            self.model.events[t].is_noop for t in range(k, self.model.depth)
        )
        return out

    def check_at(
        self, invariant, k: int, max_conflicts: Optional[int] = None
    ) -> str:
        """Decide ``invariant`` at depth ``k`` on the warm solver."""
        if not 0 <= k <= self.model.depth:
            raise ValueError(f"depth {k} outside [0, {self.model.depth}]")
        self.extend_to(k)
        self.checks += 1
        with get_tracer().span("check-at", cat="bmc", depth=k) as span:
            result = self.solver.check(
                assumptions=self.assumptions_at(invariant, k),
                max_conflicts=max_conflicts,
            )
            span.tag(result=result)
        return result

    def decode(self) -> Trace:
        """The counterexample of the last ``sat`` answer."""
        return decode_trace(self.solver.model(), self.model)

    # ------------------------------------------------------------------
    def canonical_trace(self, invariant, k: int, presolved: bool = False) -> Trace:
        """The lexicographically-least violating schedule at depth ``k``.

        Works by assumption-pinned greedy minimization: fields are
        fixed in schedule order (kind, sender, receiver, packet per
        step; then the fields of each sent packet), each to the least
        sort value still satisfiable together with the violation and
        the pins so far.  The result depends only on the encoded
        problem — not on learned clauses, activities, or any other
        solver state — so warm and cold solvers produce byte-identical
        traces.

        ``presolved=True`` promises the solver's last answer was
        ``sat`` for exactly this ``(invariant, k)`` assumption set,
        letting the minimization start from that model instead of
        re-solving it.
        """
        base = self.assumptions_at(invariant, k)
        if not presolved and self.solver.check(assumptions=base) != SAT:
            raise RuntimeError(f"no violation at depth {k} to canonicalize")
        state = {"model": self.solver.model()}
        pins: List[Term] = []

        def pin(var: Term):
            sort = var.sort
            current = state["model"][var]
            chosen = current
            for value in sort.values:
                if value == current:
                    break  # the witness already attains the minimum
                cand = Eq(var, EnumConst(sort, value))
                if self.solver.check(assumptions=base + pins + [cand]) == SAT:
                    state["model"] = self.solver.model()
                    chosen = value
                    break
            pins.append(Eq(var, EnumConst(sort, chosen)))
            return chosen

        sent: List[int] = []
        for t in range(k):
            ev = self.model.events[t]
            kind = pin(ev.kind)
            if kind == EventKind.NOOP:
                break  # noops are a canonical suffix; nothing else prints
            pin(ev.frm)
            if kind == EventKind.SEND:
                pin(ev.to)
                sent.append(pin(ev.pkt))
        for index in sorted(set(sent)):
            p = self.model.schema.packets[index]
            for var in (p.src, p.dst, p.sport, p.dport, p.origin, p.tag):
                pin(var)
        if self.solver.check(assumptions=base + pins) != SAT:
            raise RuntimeError("canonical pins became unsatisfiable")
        return self.decode()


# ----------------------------------------------------------------------
# Warm solver pool
# ----------------------------------------------------------------------
def encoding_key(net: VerificationNetwork, params: dict) -> Optional[str]:
    """An exact structural key for one network encoding.

    Unlike the result cache's fingerprint this applies **no** node
    renaming: two checks may share a warm solver only when their
    formulas are literally the same (same node names, same rule tuple,
    same packet schema parameters).  ``None`` means the network holds
    state the canonicalizer cannot serialize — skip the pool.
    """
    try:
        return repr(
            (
                "enc",
                canon(net.hosts, {}),
                canon(net.middleboxes, {}),
                canon(net.rules, {}),
                canon(net.extra_addresses, {}),
                net.allow_spoofing,
                canon(dict(params), {}),
            )
        )
    except Unfingerprintable:
        return None


class SolverPool:
    """Warm :class:`IncrementalBMC` drivers keyed by encoding structure.

    One pool per :class:`repro.core.vmn.VMN` (or per
    :class:`repro.incremental.IncrementalSession`, shared across
    versions): every invariant whose check resolves to the same slice
    and BMC parameters leases the same driver, so the network axioms
    are encoded once and learned clauses accumulate across the whole
    invariant set.  Bounded LRU, since long-running sessions retire
    slices as the network churns.
    """

    def __init__(self, max_entries: int = 8):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, IncrementalBMC]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lease(
        self, key: str, depth: int, factory: Callable[[], IncrementalBMC]
    ) -> Tuple[IncrementalBMC, bool]:
        """(driver, was_warm) for ``key``; rebuilds when the cached
        driver's unrolling is too shallow for ``depth``."""
        driver = self._entries.get(key)
        if driver is not None and driver.model_depth >= depth:
            self.hits += 1
            self._entries.move_to_end(key)
            return driver, True
        self.misses += 1
        driver = factory()
        self._entries[key] = driver
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return driver, False

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverPool({len(self._entries)} warm solvers, "
            f"{self.hits} hits, {self.misses} misses)"
        )


# ----------------------------------------------------------------------
# The check entry point
# ----------------------------------------------------------------------
def check(
    net: VerificationNetwork,
    invariant,
    depth: Optional[int] = None,
    n_packets: Optional[int] = None,
    failure_budget: Optional[int] = None,
    max_conflicts: Optional[int] = None,
    n_ports: int = 6,
    n_tags: int = 4,
    deepen: bool = False,
    warm: Optional[SolverPool] = None,
    warm_key: Optional[str] = None,
    canonical_trace: bool = False,
) -> CheckResult:
    """Check one reachability invariant against one network.

    ``invariant`` is any object with ``violation_term(ctx) -> Term``;
    optional hints ``n_packets_hint`` and ``failure_budget`` on the
    invariant are honoured when the keyword arguments are left ``None``.

    ``warm`` names a :class:`SolverPool` to lease the solver from (the
    batch engine passes the per-VMN pool so checks sharing a slice
    share an encoding); ``warm_key`` skips recomputing the encoding
    key.  ``deepen=True`` walks depths ``1..depth`` on the warm solver,
    stopping at the first violation instead of solving the full
    unrolling; ``canonical_trace=True`` canonicalizes the reported
    counterexample (see :meth:`IncrementalBMC.canonical_trace`).
    """
    if n_packets is None:
        n_packets = getattr(invariant, "n_packets_hint", 2)
    if failure_budget is None:
        failure_budget = getattr(invariant, "failure_budget", 0)
    if depth is None:
        depth = default_depth(net, n_packets, failure_budget)

    started = time.perf_counter()

    def build() -> IncrementalBMC:
        return IncrementalBMC(
            net,
            n_packets=n_packets,
            depth=depth,
            failure_budget=failure_budget,
            n_ports=n_ports,
            n_tags=n_tags,
        )

    with get_tracer().span(
        "check",
        cat="bmc",
        invariant=type(invariant).__name__,
        depth=depth,
        n_packets=n_packets,
    ) as span:
        driver, was_warm = None, False
        if warm is not None:
            key = warm_key
            if key is None:
                key = encoding_key(
                    net,
                    {
                        "n_packets": n_packets,
                        "failure_budget": failure_budget,
                        "n_ports": n_ports,
                        "n_tags": n_tags,
                    },
                )
            if key is not None:
                driver, was_warm = warm.lease(key, depth, build)
        if driver is None:
            driver = build()

        before = driver.counters()
        encode_before = driver.encode_seconds
        schedule = list(range(1, depth + 1)) if deepen else [depth]
        status = HOLDS
        trace: Optional[Trace] = None
        found_depth = depth
        remaining = max_conflicts
        for k in schedule:
            result = driver.check_at(invariant, k, max_conflicts=remaining)
            if max_conflicts is not None:
                used = driver.counters()["conflicts"] - before["conflicts"]
                remaining = max(0, max_conflicts - used)
            if result == SAT:
                status = VIOLATED
                found_depth = k
                trace = (
                    driver.canonical_trace(invariant, k, presolved=True)
                    if canonical_trace
                    else driver.decode()
                )
                break
            if result != UNSAT:
                status = UNKNOWN
                break
        span.tag(status=status, found_depth=found_depth, warm=was_warm)
    get_registry().counter(
        "repro_bmc_checks_total", "BMC invariant checks by status"
    ).inc(status=status, warm=str(was_warm).lower())
    elapsed = time.perf_counter() - started

    after = driver.counters()
    stats = {k: after[k] - before[k] for k in _COUNTER_KEYS}
    solver_stats = driver.solver.stats()
    stats.update(
        vars=solver_stats["vars"],
        clauses=solver_stats["clauses"],
        learnts=solver_stats["learnts"],
        warm=was_warm,
        checks=driver.checks,
        asserted_depth=driver.asserted_depth,
        encode_seconds=driver.encode_seconds - (encode_before if was_warm else 0.0),
        cumulative=after,
    )
    return CheckResult(
        status=status,
        invariant=invariant,
        depth=found_depth,
        n_packets=n_packets,
        solve_seconds=elapsed,
        trace=trace,
        stats=stats,
    )
