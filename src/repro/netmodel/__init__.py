"""Discrete-timestep symbolic network model (the VMN encoding)."""

from .bmc import (
    HOLDS,
    UNKNOWN,
    VIOLATED,
    CheckResult,
    IncrementalBMC,
    SolverPool,
    check,
    default_depth,
    encoding_key,
)
from .events import EVENT_KINDS, EventKind, EventVars
from .packets import (
    REQUEST_TAG,
    PacketSchema,
    SymPacket,
    reversed_flow,
    same_five_tuple,
    same_flow,
)
from .rules import HeaderMatch, TransferRule
from .system import OMEGA, ModelContext, NetworkSMTModel, VerificationNetwork, fresh_ns
from .trace import PacketValues, Trace, TraceEvent, decode_trace

__all__ = [
    "check",
    "default_depth",
    "CheckResult",
    "IncrementalBMC",
    "SolverPool",
    "encoding_key",
    "VIOLATED",
    "HOLDS",
    "UNKNOWN",
    "EventKind",
    "EventVars",
    "EVENT_KINDS",
    "PacketSchema",
    "SymPacket",
    "REQUEST_TAG",
    "same_flow",
    "same_five_tuple",
    "reversed_flow",
    "HeaderMatch",
    "TransferRule",
    "OMEGA",
    "ModelContext",
    "NetworkSMTModel",
    "VerificationNetwork",
    "fresh_ns",
    "PacketValues",
    "Trace",
    "TraceEvent",
    "decode_trace",
]
