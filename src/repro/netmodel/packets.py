"""Symbolic packets.

VMN reasons about a small number of *symbolic packets*: records of
enum-sorted header fields whose values the solver chooses while hunting
for an invariant violation.  Following the paper (§3.2), header fields
and abstract packet classes are functions of the packet — ``src(p)``,
``dst(p)``, ``origin(p)`` — which here become one enum variable per
(packet index, field).

Fields:

* ``src``, ``dst`` — addresses (the address sort contains every host and
  middlebox address in the verification problem, see
  :class:`PacketSchema`),
* ``sport``, ``dport`` — transport ports (small integer sort; NATs and
  load balancers rewrite these),
* ``origin`` — the address whose *data* the packet carries (used by the
  data-isolation invariants of paper §5.2; for a request it is the
  server being asked, for a response the server that produced the body),
* ``tag`` — an opaque payload identity.  "Complex" packet modifications
  (encryption, compression) are modelled, as in the paper (§3.4), by
  leaving the output tag unconstrained — a random value.

Flow identity follows the paper's ``flow(p)`` function: two packets are
in the same (bidirectional) flow when their 5-tuples match directly or
reversed; :func:`same_flow` builds that term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..smt import And, EnumConst, EnumSort, EnumVar, Eq, Or, Term

__all__ = [
    "PacketSchema",
    "SymPacket",
    "same_five_tuple",
    "same_flow",
    "reversed_flow",
    "REQUEST_TAG",
]

#: Default number of distinct transport-port values in the port sort.
DEFAULT_NUM_PORTS = 6
#: Default number of payload-tag values (including the request tag).
DEFAULT_NUM_TAGS = 4

#: Tag value marking a packet as a *request* (it asks for content, it
#: does not carry it).  All other tags mark data-bearing packets; the
#: provenance axioms (a node can only emit data it produced or received)
#: and the data-isolation invariants apply to those.
REQUEST_TAG = "req"


class PacketSchema:
    """Per-problem sorts for packet fields, plus the packet-index sort.

    Every verification problem gets its own namespace prefix ``ns`` so
    that interned sort declarations from different problems never clash.
    """

    def __init__(
        self,
        ns: str,
        addresses: Sequence[str],
        n_packets: int,
        n_ports: int = DEFAULT_NUM_PORTS,
        n_tags: int = DEFAULT_NUM_TAGS,
    ):
        if n_packets < 1:
            raise ValueError("need at least one symbolic packet")
        self.ns = ns
        self.addresses = tuple(addresses)
        if n_tags < 2:
            raise ValueError("need the request tag plus at least one data tag")
        self.addr_sort = EnumSort(f"{ns}:addr", self.addresses)
        self.port_sort = EnumSort(f"{ns}:port", tuple(range(n_ports)))
        tags = (REQUEST_TAG,) + tuple(f"data{i}" for i in range(n_tags - 1))
        self.tag_sort = EnumSort(f"{ns}:tag", tags)
        self.pkt_sort = EnumSort(f"{ns}:pkt", tuple(range(n_packets)))
        self.n_packets = n_packets
        self.packets: List[SymPacket] = [
            SymPacket(self, i) for i in range(n_packets)
        ]

    def addr(self, name: str) -> Term:
        """The address constant for ``name``."""
        return EnumConst(self.addr_sort, name)

    def port(self, number: int) -> Term:
        return EnumConst(self.port_sort, number)

    def tag(self, name: str) -> Term:
        return EnumConst(self.tag_sort, name)

    def pkt_index(self, i: int) -> Term:
        return EnumConst(self.pkt_sort, i)


@dataclass(frozen=True)
class SymPacket:
    """The field variables of symbolic packet number ``index``."""

    schema: PacketSchema
    index: int

    def _field(self, name: str, sort: EnumSort) -> Term:
        return EnumVar(f"{self.schema.ns}:p{self.index}.{name}", sort)

    @property
    def src(self) -> Term:
        return self._field("src", self.schema.addr_sort)

    @property
    def dst(self) -> Term:
        return self._field("dst", self.schema.addr_sort)

    @property
    def sport(self) -> Term:
        return self._field("sport", self.schema.port_sort)

    @property
    def dport(self) -> Term:
        return self._field("dport", self.schema.port_sort)

    @property
    def origin(self) -> Term:
        return self._field("origin", self.schema.addr_sort)

    @property
    def tag(self) -> Term:
        return self._field("tag", self.schema.tag_sort)

    @property
    def five_tuple(self) -> Tuple[Term, Term, Term, Term]:
        return (self.src, self.dst, self.sport, self.dport)

    @property
    def is_request(self) -> Term:
        """The packet asks for content instead of carrying it."""
        return Eq(self.tag, self.schema.tag(REQUEST_TAG))

    def fields_equal(self, other: "SymPacket") -> Term:
        """All header fields (including origin and tag) coincide."""
        return And(
            Eq(self.src, other.src),
            Eq(self.dst, other.dst),
            Eq(self.sport, other.sport),
            Eq(self.dport, other.dport),
            Eq(self.origin, other.origin),
            Eq(self.tag, other.tag),
        )


def same_five_tuple(p: SymPacket, q: SymPacket) -> Term:
    """Directed flow identity: identical (src, dst, sport, dport)."""
    return And(
        Eq(p.src, q.src),
        Eq(p.dst, q.dst),
        Eq(p.sport, q.sport),
        Eq(p.dport, q.dport),
    )


def reversed_flow(p: SymPacket, q: SymPacket) -> Term:
    """``q`` travels the reverse direction of ``p``'s 5-tuple."""
    return And(
        Eq(p.src, q.dst),
        Eq(p.dst, q.src),
        Eq(p.sport, q.dport),
        Eq(p.dport, q.sport),
    )


def same_flow(p: SymPacket, q: SymPacket) -> Term:
    """Bidirectional flow identity — the paper's ``flow(p) = flow(q)``."""
    return Or(same_five_tuple(p, q), reversed_flow(p, q))
