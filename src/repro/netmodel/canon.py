"""Structural canonicalization of verification problems.

Two consumers sit on top of these helpers:

* :func:`repro.core.engine.fingerprint` canonicalizes a
  ``(network, invariant, params)`` triple *up to node renaming* so
  isomorphic checks share one result-cache entry;
* :func:`repro.netmodel.bmc.encoding_key` canonicalizes a
  ``(network, params)`` pair *exactly* (empty rename) so checks with
  byte-identical SMT encodings can share one warm solver.

``canon`` walks strings, scalars, containers, dataclasses, and plain
config objects (middlebox models), producing a hashable, ``repr``-stable
form; anything else raises :class:`Unfingerprintable`, which callers
translate into "skip the cache, never risk an unsound hit".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

__all__ = [
    "Unfingerprintable",
    "canon",
    "collect_names",
    "field_values",
    "invariant_fingerprint",
]


class Unfingerprintable(Exception):
    """The problem contains state the canonicalizer cannot serialize."""


def collect_names(value, known: frozenset, order: List[str]) -> None:
    """Append network node names in ``value`` to ``order``, first
    appearance wins; containers are walked deterministically."""
    if isinstance(value, str):
        if value in known and value not in order:
            order.append(value)
    elif isinstance(value, (tuple, list)):
        for v in value:
            collect_names(v, known, order)
    elif isinstance(value, (set, frozenset)):
        for v in sorted(value, key=repr):
            collect_names(v, known, order)
    elif isinstance(value, dict):
        for k in sorted(value, key=repr):
            collect_names(k, known, order)
            collect_names(value[k], known, order)


def field_values(obj) -> List[Tuple[str, object]]:
    """(name, value) pairs of an invariant or middlebox, in a stable
    order: dataclass field order when available, else sorted ``vars``."""
    if dataclasses.is_dataclass(obj):
        return [(f.name, getattr(obj, f.name)) for f in dataclasses.fields(obj)]
    return sorted(vars(obj).items())


def invariant_fingerprint(invariant) -> str:
    """An *exact* structural key of one invariant (no node renaming).

    This is the identity under which a persistent store files an
    invariant's proof certificate: stable across process restarts,
    ``PYTHONHASHSEED`` values, and Python versions (it is built from
    sorted/`repr`-stable canonical forms only), and — unlike the result
    cache's check fingerprint — independent of the network version, so
    a certificate filed under it can be re-validated against any later
    version of the network.
    """
    return repr((
        "inv",
        type(invariant).__module__,
        type(invariant).__qualname__,
        tuple((n, canon(v, {})) for n, v in field_values(invariant)),
    ))


def canon(value, rename: Dict[str, str]):
    """Canonical, hashable form of ``value`` with node names renamed."""
    if isinstance(value, str):
        return rename.get(value, value)
    if isinstance(value, (bool, int, float)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return ("seq",) + tuple(canon(v, rename) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(
            sorted((canon(v, rename) for v in value), key=repr)
        )
    if isinstance(value, dict):
        return ("map",) + tuple(
            sorted(
                ((canon(k, rename), canon(v, rename)) for k, v in value.items()),
                key=repr,
            )
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            "dc",
            type(value).__qualname__,
            tuple((n, canon(v, rename)) for n, v in field_values(value)),
        )
    if hasattr(value, "__dict__") and not callable(value):
        # Middlebox models and other plain config objects: their
        # behaviour is a pure function of (class, attributes).
        return (
            "obj",
            type(value).__module__,
            type(value).__qualname__,
            tuple((n, canon(v, rename)) for n, v in field_values(value)),
        )
    raise Unfingerprintable(f"cannot canonicalize {type(value).__name__}: {value!r}")
