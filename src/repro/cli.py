"""Command-line interface: audit the paper's scenarios from a shell.

::

    python -m repro list
    python -m repro audit enterprise --size 3
    python -m repro audit datacenter --size 3 --misconfig --seed 7
    python -m repro audit isp --size 3 --misconfig --show-traces
    python -m repro prove isp --size 3 --json
    python -m repro watch enterprise --deltas 10
    python -m repro blame enterprise --fault enterprise/deny-dropped
    python -m repro history enterprise --store-dir ~/.repro-store
    python -m repro audit enterprise --json > verdicts.json
    python -m repro audit enterprise --trace run.json --metrics
    python -m repro stats run.json --top 15
    python -m repro serve start --port 8642 --store-dir ~/.repro-store
    python -m repro audit enterprise --server :8642
    python -m repro top --server :8642
    python -m repro tail --server :8642 --follow

``audit`` builds the scenario (optionally with its §5.1/§5.2
misconfiguration injected), verifies every invariant in its check list,
and compares against the expected verdicts.  ``prove`` is ``audit``
with the unbounded proof portfolio (:mod:`repro.proof`): every check
runs BMC-for-bugs alongside k-induction and IC3/PDR, and each row
reports its guarantee strength.  ``watch`` replays a churn stream (a
generated sequence of network deltas) through an incremental
re-verification session and reports what each delta cost to absorb.
``blame`` explains verdicts — the minimal set of named configuration
units (deny rules, whitelist policies, steering paths) each
holds-verdict rests on, via an assumption-level unsat core over a
guarded encoding; with ``--fault``/``--misconfig`` it also diffs
against the clean baseline, localizing the injected fault.  ``history``
renders the per-invariant verdict timelines drift detection appends to
the persistent store.

**Exit codes** (audit / prove / watch / repair): ``0`` — every verdict
matches its expectation and nothing is violated; ``1`` — at least one
invariant is violated or a verdict mismatches its expectation (for
``watch``: judged on the churn stream's final version; for ``repair``:
no certified patch, or mismatches remain after it); ``2`` — usage or
transport errors (unknown scenario, unreachable ``--server``, bad
flags).  Scripts and CI can gate on the exit code alone.

Every verification command takes ``--json`` (machine-readable verdicts
and timings on stdout) and ``--server URL`` (execute on a resident
``repro serve`` daemon, reusing its warm caches, solvers, and persisted
certificate store — verdict-identical to running in-process, and
byte-identical under ``--stable-json``).  Without ``--server`` the
command runs in-process, exactly as before the daemon existed.

``audit``/``prove``/``watch``/``repair`` also take ``--stable-json``:
like ``--json`` but with wall-clock timings and warm-state-dependent
fields (cache-hit flags, solver-effort counters, proof-search
artifacts) stripped, making the output byte-reproducible for a fixed
``--seed`` across process invocations *and* across warm/cold execution
paths.

Every verification command also takes ``--trace OUT.json`` (record a
hierarchical span trace — the file loads directly in
``chrome://tracing``/Perfetto and doubles as the stable run record) and
``--metrics [OUT.prom]`` (dump the Prometheus-style metrics text; to
stderr when no path is given, so ``--json`` stdout stays clean).
``repro stats OUT.json`` renders the exclusive-time cost breakdown of
a recorded trace.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from contextlib import contextmanager

from . import obs
from .scenarios import CHURN_GENERATORS, SCENARIOS, ScenarioError
from .serve.client import (
    DEFAULT_PORT,
    ServerError,
    normalize_url,
    recent_requests,
    request as _server_request,
    server_metrics,
    server_status,
    shutdown_server,
)
from .serve.service import (
    BadRequest,
    payload_exit_code,
    run_audit,
    run_blame,
    run_history,
    run_repair,
    run_watch,
)

__all__ = ["main", "SCENARIOS"]


def _add_obs_flags(parser) -> None:
    """``--trace`` / ``--metrics`` on every verification subcommand."""
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="record a span trace + run record to OUT.json "
                             "(Chrome-trace compatible; see `repro stats`)")
    parser.add_argument("--metrics", nargs="?", const="-", default=None,
                        metavar="OUT.prom",
                        help="dump Prometheus-style metrics text (to stderr "
                             "when no path is given, keeping --json stdout "
                             "clean)")


def _add_server_flag(parser) -> None:
    parser.add_argument("--server", default=None, metavar="URL",
                        help="execute on a resident `repro serve` daemon "
                             "(e.g. http://127.0.0.1:8642 or just :8642), "
                             "reusing its warm caches and persisted store; "
                             "verdicts are identical to in-process runs and "
                             "--stable-json output is byte-identical. "
                             "An unreachable server is an error (exit 2), "
                             "never a silent cold fallback")


@contextmanager
def _observability(args):
    """Enable tracing/metrics around one CLI command when ``--trace`` or
    ``--metrics`` was given; write the outputs on exit.

    The root span is named after the command and opened *before* the
    scenario is built, so the recorded tree attributes (nearly) all of
    the command's wall time — ``repro stats`` reports the coverage.
    """
    trace_out = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics", None)
    if trace_out is None and metrics_out is None:
        yield
        return
    meta = {"command": args.command, "scenario": getattr(args, "scenario", None),
            "seed": getattr(args, "seed", None)}
    started = time.perf_counter()
    with obs.observe(meta=dict(meta)) as (tracer, registry):
        try:
            with tracer.span(args.command, cat="cli",
                             scenario=meta["scenario"]):
                yield
        finally:
            meta["wall_seconds"] = round(time.perf_counter() - started, 6)
            if trace_out is not None:
                obs.write_run_record(trace_out, tracer, registry, meta=meta)
            if metrics_out is not None:
                text = registry.to_prometheus()
                if metrics_out == "-":
                    sys.stderr.write(text)
                else:
                    with open(metrics_out, "w", encoding="utf-8") as fh:
                        fh.write(text)


def _cmd_stats(args) -> int:
    try:
        payload = obs.load_trace(args.trace)
    except (OSError, ValueError) as err:
        print(f"cannot load trace {args.trace!r}: {err}")
        return 2
    print(obs.render_stats(payload, top=args.top, by=args.by))
    return 0


def _cmd_list(_args) -> int:
    print("available scenarios (paper section in parentheses):")
    notes = {
        "datacenter": "Fig 1, §5.1 Rules",
        "datacenter-redundancy": "§5.1 Redundancy (primary firewall down)",
        "datacenter-traversal": "§5.1 Traversal (IDPS bypass)",
        "datacenter-caches": "§5.2 data isolation",
        "enterprise": "Fig 6, §5.3.1",
        "multitenant": "§5.3.2 EC2 security groups",
        "isp": "Fig 9a, §5.3.3 scrubbing",
    }
    for name in SCENARIOS:
        churn = "  [watchable]" if name in CHURN_GENERATORS else ""
        print(f"  {name:24s} {notes[name]}{churn}")
    return 0


# ----------------------------------------------------------------------
# Request specs + dispatch (in-process or --server)
# ----------------------------------------------------------------------
def _spec_from_args(args, command: str) -> dict:
    """The request spec for one CLI invocation — the exact dict a
    ``--server`` run POSTs to the daemon, so both paths verify the
    same problem by construction."""
    return {
        "command": command,
        "scenario": args.scenario,
        "size": getattr(args, "size", None),
        "misconfig": getattr(args, "misconfig", False),
        "seed": args.seed,
        "no_slicing": getattr(args, "no_slicing", False),
        "no_cache": getattr(args, "no_cache", False),
        "jobs": getattr(args, "jobs", 1),
        "stable": getattr(args, "stable_json", False),
        "budget": getattr(args, "budget", None),
        "max_checks": getattr(args, "max_checks", None),
        "deltas": getattr(args, "deltas", 10),
        "prove": getattr(args, "prove", False),
        "fault": getattr(args, "fault", None),
        "max_edits": getattr(args, "max_edits", 3),
        "max_candidates": getattr(args, "max_candidates", 32),
        "only": getattr(args, "only", None),
        "label": getattr(args, "label", None),
    }


def _execute_spec(spec: dict, args, runner) -> dict:
    """The payload for ``spec`` — from the daemon when ``--server`` was
    given, in-process otherwise.  The server returns the *full* payload
    (timings and all); any ``--stable-json`` stripping happens here on
    the client, with the same code either way."""
    server = getattr(args, "server", None)
    if server:
        return _server_request(server, spec)["payload"]
    return runner(spec)


#: Keys dropped by ``--stable-json``: wall-clock fields, plus solver-
#: *internal* artifacts (clause counts of learned certificates, shrink
#: statistics, proof-engine identity) whose exact values depend on the
#: process's memory layout (term interning keys hash object ids, so
#: search tie-breaking varies run to run).
_UNSTABLE_KEYS = frozenset({
    "seconds", "solve_seconds", "elapsed_seconds", "encode_seconds",
    "timing",
    "summary", "minimized", "solver_checks", "engine",
    # Per-delta registry deltas include timing histograms and solver
    # effort counters — faithful, but not byte-stable across runs.
    "metrics",
})

#: Also dropped by ``--stable-json``: fields that depend on *warm
#: state* — whether a verdict came from the cache, how much solver
#: effort it took, whether a persisted certificate was revalidated.
#: A warm ``--server`` run and a cold in-process run legitimately
#: differ here while agreeing on every verdict; stripping them is what
#: upgrades the parity guarantee from "same verdicts" to "same bytes".
_WARM_STATE_KEYS = frozenset({
    "cached", "solver", "solver_totals",
    "cache_hits", "solver_runs", "certificates_reused",
    "certificate", "recheck_ok", "certificate_shrink", "note",
    # Provenance lineage says *where* a verdict came from (fresh vs
    # cache vs reused certificate) — the definition of warm state.  The
    # rest of a provenance record (fingerprint, config_hash, guarantee)
    # is identical warm or cold and stays.
    "lineage",
})

_STABLE_DROPPED = _UNSTABLE_KEYS | _WARM_STATE_KEYS


def _strip_unstable(payload):
    """A copy of a JSON payload with every unstable field removed."""
    if isinstance(payload, dict):
        return {
            k: _strip_unstable(v)
            for k, v in payload.items()
            if k not in _STABLE_DROPPED
        }
    if isinstance(payload, list):
        return [_strip_unstable(v) for v in payload]
    return payload


def _emit_json(payload, stable: bool) -> None:
    if stable:
        payload = _strip_unstable(payload)
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")


# ----------------------------------------------------------------------
# Text renderers (consume the same payloads --json emits)
# ----------------------------------------------------------------------
def _render_audit_text(payload: dict, show_traces: bool, prove: bool) -> None:
    print(f"{payload['scenario']}: {payload['topology']}")
    print(f"policy equivalence classes: {payload['policy_classes']}")
    for row in payload["checks"]:
        where = (f"slice={row['slice_size']}" if row["slice_size"]
                 else "whole-net")
        cached = ", cached" if row["cached"] else ""
        strength = ""
        if prove:
            strength = (
                f" [{row['guarantee']}"
                + (f" via {row['engine']}" if row["engine"] else "")
                + "]"
            )
        expected = "" if row["ok"] else f"  EXPECTED {row['expected']}"
        print(f"  {row['label']:30s} {row['status']:9s}{strength} "
              f"({where}, {row['solve_seconds']:.2f}s{cached}){expected}")
        if show_traces and row["trace"] is not None:
            for line in row["trace"].splitlines()[1:]:
                print("     ", line)
    tail = ""
    if prove:
        guarantees = payload["guarantees"]
        tail = (f"; {guarantees['unbounded']} unbounded / "
                f"{guarantees['bounded']} bounded guarantees")
    print(f"{payload['n_checks']} invariants in "
          f"{payload['elapsed_seconds']:.1f}s; "
          f"{payload['mismatches']} unexpected verdicts{tail}")


def _render_watch_text(payload: dict) -> None:
    versions = payload["versions"]
    print(f"{payload['scenario']}: watching {len(versions)} deltas "
          f"over {payload['baseline']['n_checks']} checks")
    print("  " + payload["baseline"]["summary"])
    for row in versions:
        drift = f"; DRIFT: {len(row['drift'])}" if row["drift"] else ""
        print("  " + row["summary"] + drift)
    totals = payload["totals"]
    print(f"absorbed {totals['deltas']} deltas with "
          f"{totals['solver_runs']} solver runs "
          f"(vs {totals['full_audit_equivalent_checks']} checks across "
          f"full re-audits); {totals['cache_hits']} cache hits, "
          f"{totals['checks_carried']} verdicts carried, "
          f"{totals['seconds']}s total")


def _render_repair_text(payload: dict) -> None:
    fault = payload["fault"]
    print(f"{payload['scenario']}: {fault['description']}")
    print(f"  injected: {fault['deltas'][0]}")
    tried = payload["candidates"]["tried"]
    if payload["ok"]:
        summary = (f"repaired {len(payload['targets'])} check(s) with "
                   f"{len(payload['patch'])} edit(s) "
                   f"(cost {payload['patch_cost']}) "
                   f"after {tried} candidate(s)")
    else:
        summary = (f"no certified patch for {len(payload['targets'])} "
                   f"check(s) after {tried} candidate(s): {payload['note']}")
    print(f"  {summary}")
    for desc in payload["patch"] or ():
        print(f"    patch: {desc}")
    for label, row in payload["certificates"].items():
        print(f"    certified: {label} [{row['summary']}]")
    best = payload.get("best_effort")
    if best and not payload["ok"]:
        print(f"    best effort: {best['label']} "
              f"({best['mismatches']} mismatch(es) left)")
    final = payload["final_audit"]
    print(f"  {final['n_checks']} checks after repair; "
          f"{final['mismatches']} mismatches; "
          f"{tried} candidates screened in "
          f"{payload['timing']['seconds']:.1f}s")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_audit(args, prove=None) -> int:
    spec = _spec_from_args(args, "prove" if prove else "audit")
    try:
        payload = _execute_spec(spec, args, run_audit)
    except (BadRequest, ServerError) as err:
        print(str(err))
        return 2
    if args.json or args.stable_json:
        _emit_json(payload, args.stable_json)
    else:
        _render_audit_text(payload, show_traces=args.show_traces,
                           prove=bool(prove))
    return payload_exit_code(payload)


def _cmd_watch(args) -> int:
    spec = _spec_from_args(args, "watch")
    try:
        payload = _execute_spec(spec, args, run_watch)
    except (BadRequest, ServerError) as err:
        print(str(err))
        return 2
    if args.json or args.stable_json:
        _emit_json(payload, args.stable_json)
    else:
        _render_watch_text(payload)
    return payload_exit_code(payload)


def _cmd_repair(args) -> int:
    spec = _spec_from_args(args, "repair")
    try:
        payload = _execute_spec(spec, args, run_repair)
    except (BadRequest, ServerError) as err:
        print(str(err))
        return 2
    if args.json or args.stable_json:
        _emit_json(payload, args.stable_json)
    else:
        _render_repair_text(payload)
    return payload_exit_code(payload)


def _render_blame_text(payload: dict) -> None:
    print(f"{payload['scenario']}: blame over {payload['n_checks']} check(s)")
    fault = payload.get("fault")
    if fault:
        print(f"  injected fault: {fault['deltas'][0]}")
    for row in payload["checks"]:
        kind = row["kind"] or "inconclusive"
        print(f"  {row['label']:30s} {row['status']:9s} "
              f"[{kind}: {len(row['blame'])} unit(s), "
              f"{row['n_guards']} guards probed]")
        for entry in row["blame"]:
            print(f"      {entry}")
    delta = payload.get("delta")
    if delta is not None:
        if not delta:
            print("no blame drift vs the clean baseline")
            return
        print(f"blame drift vs the clean baseline ({len(delta)} check(s); "
              f"'-' = protection the fault removed):")
        for row in delta:
            flip = ""
            if row["status_clean"] != row["status_faulted"]:
                flip = f"  [{row['status_clean']} -> {row['status_faulted']}]"
            print(f"  {row['label']}{flip}")
            for entry in row["only_clean"]:
                print(f"      -{entry}")
            for entry in row["only_faulted"]:
                print(f"      +{entry}")


def _render_history_text(payload: dict) -> None:
    print(f"verdict history — {payload['store']} "
          f"({payload['n_invariants']} tracked invariant(s))")
    for timeline in payload["timelines"]:
        print(f"  {timeline['label'] or timeline['key']}: "
              f"current={timeline['current']} "
              f"entries={timeline['n_entries']} flips={timeline['flips']}")
        for entry in timeline["entries"]:
            lineage = entry.get("lineage") or "?"
            engine = entry.get("engine") or "?"
            print(f"      v{entry.get('version', '?'):<4} "
                  f"{entry.get('status', '?'):9s} "
                  f"network={entry.get('network', '?')}  "
                  f"{lineage}/{engine}")


def _cmd_blame(args) -> int:
    spec = _spec_from_args(args, "blame")
    try:
        payload = _execute_spec(spec, args, run_blame)
    except (BadRequest, ServerError) as err:
        print(str(err))
        return 2
    if args.json or args.stable_json:
        _emit_json(payload, args.stable_json)
    else:
        _render_blame_text(payload)
    return payload_exit_code(payload)


def _open_shard_store(store_dir: str, spec: dict):
    """The store file a daemon over ``store_dir`` would use for the
    spec's baseline network — same shard-path derivation as
    :meth:`repro.serve.service.VerificationService._store_path`."""
    import hashlib

    from .incremental.delta import network_fingerprint
    from .scenarios import build_scenario
    from .store import VerdictStore

    bundle = build_scenario(spec["scenario"], size=spec["size"],
                            misconfig=spec["misconfig"], seed=spec["seed"])
    key = network_fingerprint(bundle.topology, bundle.steering)
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
    return VerdictStore.open(os.path.join(store_dir, f"shard-{digest}.store"))


def _cmd_history(args) -> int:
    spec = _spec_from_args(args, "history")
    try:
        if args.server:
            payload = _server_request(args.server, spec)["payload"]
        else:
            if args.store:
                from .store import VerdictStore

                store = VerdictStore.open(args.store)
            elif args.store_dir:
                store = _open_shard_store(args.store_dir, spec)
            else:
                print("history needs --store-dir DIR, --store FILE, "
                      "or --server URL (timelines live in the store)")
                return 2
            payload = run_history(spec, store=store)
    except (BadRequest, ScenarioError, ServerError) as err:
        print(str(err))
        return 2
    if args.json or args.stable_json:
        _emit_json(payload, args.stable_json)
    else:
        _render_history_text(payload)
    return payload_exit_code(payload)


def _cmd_serve(args) -> int:
    if args.serve_command == "start":
        from .serve.server import run_server

        return run_server(
            host=args.host,
            port=args.port,
            store_dir=args.store_dir,
            cache_entries=args.cache_entries,
            max_shards=args.max_shards,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            quiet=args.quiet,
            trace_requests=not args.no_request_traces,
            slow_trace_seconds=args.slow_trace,
            soft_deadline_seconds=args.soft_deadline,
            recorder_capacity=args.recorder_capacity,
            max_retained_traces=args.retained_traces,
            log_file=args.log_file,
            log_max_bytes=args.log_max_bytes,
        )
    server = args.server or f"127.0.0.1:{DEFAULT_PORT}"
    try:
        if args.serve_command == "stop":
            shutdown_server(server)
            print(f"stopped {server}")
            return 0
        status = server_status(server)
    except ServerError as err:
        print(str(err))
        return 2
    json.dump(status, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


# ----------------------------------------------------------------------
# Live introspection: `repro top` / `repro tail`
# ----------------------------------------------------------------------
def _parse_prom(text: str) -> dict:
    """Series name (labels included) -> value, from Prometheus text."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        try:
            name, value = line.rsplit(None, 1)
            series[name] = float(value)
        except ValueError:
            continue
    return series


_PROM_LATENCY = re.compile(
    r'^repro_serve_request_seconds_(?P<part>p50|p95|p99)'
    r'\{command="(?P<command>[^"]+)"\}$'
)


def _render_top(server: str, status: dict, prom: dict,
                prev_requests=None) -> None:
    requests = status.get("requests", 0)
    delta = "" if prev_requests is None else f" (+{requests - prev_requests})"
    inflight = status.get("inflight") or []
    print(f"repro top — {normalize_url(server)}  "
          f"uptime {status.get('uptime_seconds', 0):.0f}s  "
          f"pid {status.get('pid', '?')}")
    print(f"requests {requests}{delta}  errors {status.get('errors', 0)}  "
          f"rejected {status.get('rejected', 0)}  "
          f"stalls {status.get('stalls', 0)}  "
          f"inflight {len(inflight)}/{status.get('max_inflight', '?')}  "
          f"waiting {status.get('waiting', 0)}")
    recorder = status.get("recorder") or {}
    if recorder:
        print(f"flight recorder: {recorder.get('entries', 0)}"
              f"/{recorder.get('capacity', 0)} entries "
              f"({recorder.get('recorded', 0)} recorded), "
              f"{recorder.get('retained_traces', 0)} slow traces retained")
    latency = {}
    for key, value in prom.items():
        match = _PROM_LATENCY.match(key)
        if match is not None:
            latency.setdefault(match.group("command"), {})[
                match.group("part")] = value
    if latency:
        print("request seconds (bucket-estimated):")
        for command in sorted(latency):
            parts = latency[command]
            count = prom.get(
                f'repro_serve_request_seconds_count{{command="{command}"}}',
                0,
            )
            print(f"  {command:8s} n={int(count):<6d} "
                  f"p50 {parts.get('p50', 0.0):8.3f}s  "
                  f"p95 {parts.get('p95', 0.0):8.3f}s  "
                  f"p99 {parts.get('p99', 0.0):8.3f}s")
    shards = status.get("shards") or {}
    print(f"shards ({len(shards)} resident):")
    for digest, row in shards.items():
        rate = row.get("cache_hit_rate")
        rate_text = f"{rate:.1%}" if isinstance(rate, (int, float)) else "-"
        age = row.get("checkpoint_age_seconds")
        age_text = f"  ckpt {age:.0f}s ago" if age is not None else ""
        print(f"  {digest}  {row.get('scenario', '?'):16s} "
              f"requests {row.get('requests', 0):<5d} "
              f"hit-rate {rate_text:>6s}  "
              f"entries {row.get('cache_entries', 0)}{age_text}")
    for row in inflight:
        flag = "  STALLED" if row.get("stalled") else ""
        print(f"  running: {row.get('request_id')}  {row.get('command')} "
              f"{row.get('scenario')}  {row.get('seconds', 0.0):.1f}s{flag}")


def _cmd_top(args) -> int:
    server = args.server or f"127.0.0.1:{DEFAULT_PORT}"
    prev_requests = None
    iteration = 0
    try:
        while True:
            iteration += 1
            try:
                status = server_status(server)
                prom = _parse_prom(server_metrics(server))
            except ServerError as err:
                print(str(err))
                return 2
            if sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            _render_top(server, status, prom, prev_requests)
            prev_requests = status.get("requests", 0)
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _format_event_line(record: dict) -> str:
    ts = record.get("ts")
    when = (time.strftime("%H:%M:%S", time.localtime(ts))
            if isinstance(ts, (int, float)) else "--:--:--")
    extras = " ".join(
        f"{key}={record[key]}" for key in record
        if key not in ("ts", "level", "event")
    )
    return (f"{when} {record.get('level', '?'):7s} "
            f"{record.get('event', '?'):18s} {extras}").rstrip()


def _print_event(line: str) -> None:
    line = line.strip()
    if not line:
        return
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        print(line)
        return
    # The flight recorder's requests.jsonl holds request summaries, not
    # events — render those with the same line format `repro tail
    # --server` uses, so tailing either source reads the same.
    if "event" not in record and "request_id" in record:
        print(_format_request_line(record))
        return
    print(_format_event_line(record))


def _format_request_line(row: dict) -> str:
    ts = row.get("ts")
    when = (time.strftime("%H:%M:%S", time.localtime(ts))
            if isinstance(ts, (int, float)) else "--:--:--")
    base = (f"{when}  {row.get('request_id', '?'):16s} "
            f"{row.get('command', '?'):6s} "
            f"{row.get('scenario', '?'):16s} "
            f"{row.get('seconds', 0.0):8.3f}s  "
            f"exit {row.get('exit_code', '?')}")
    if row.get("error"):
        base += f"  ERROR {row['error']}"
    else:
        base += (f"  checks {row.get('checks', 0)} "
                 f"hits {row.get('cache_hits', 0)} "
                 f"solver {row.get('solver_runs', 0)}")
    if row.get("slow"):
        base += "  SLOW"
        if row.get("trace"):
            base += f" trace={row['trace']}"
    return base


def _tail_log(args) -> int:
    path = args.log
    try:
        # Size rotation moves the log to <path>.1; include the backup
        # in the initial window so `tail -n` spans a rotation boundary
        # instead of showing only the lines written since it.
        lines = []
        try:
            with open(path + ".1", encoding="utf-8") as fh:
                lines.extend(fh.readlines())
        except OSError:
            pass
        with open(path, encoding="utf-8") as fh:
            lines.extend(fh.readlines())
            offset = fh.tell()
        for line in lines[-args.lines:]:
            _print_event(line)
    except OSError as err:
        print(f"cannot read {path!r}: {err}")
        return 2
    if not args.follow:
        return 0
    try:
        while True:
            time.sleep(args.interval)
            try:
                if os.path.getsize(path) < offset:
                    offset = 0  # rotated underneath us — start over
                with open(path, encoding="utf-8") as fh:
                    fh.seek(offset)
                    for line in fh:
                        _print_event(line)
                    offset = fh.tell()
            except OSError:
                continue
    except KeyboardInterrupt:
        return 0


def _tail_server(args) -> int:
    server = args.server or f"127.0.0.1:{DEFAULT_PORT}"
    seen = set()
    try:
        while True:
            try:
                rows = recent_requests(server, n=args.lines)["requests"]
            except ServerError as err:
                print(str(err))
                return 2
            for row in reversed(rows):  # oldest first, like tail(1)
                request_id = row.get("request_id")
                if request_id in seen:
                    continue
                seen.add(request_id)
                print(_format_request_line(row), flush=True)
            if not args.follow:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_tail(args) -> int:
    if args.log and args.server:
        print("pass --log FILE or --server URL, not both")
        return 2
    if args.log:
        return _tail_log(args)
    return _tail_server(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VMN reproduction — verify reachability in networks "
                    "with mutable datapaths",
        epilog="exit codes: 0 all verdicts as expected and none violated; "
               "1 violated invariants or unexpected verdicts; "
               "2 usage/transport errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios")

    audit = sub.add_parser("audit", help="verify a scenario's invariant set")
    audit.add_argument("scenario", help="scenario name (see `list`)")
    audit.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    audit.add_argument("--misconfig", action="store_true",
                       help="inject the scenario's misconfiguration")
    audit.add_argument("--seed", type=int, default=0,
                       help="seed for randomized injections")
    audit.add_argument("--no-slicing", action="store_true",
                       help="verify on the whole network (baseline)")
    audit.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="verify invariants on N worker processes "
                            "(0 = one per CPU; default: sequential)")
    audit.add_argument("--no-cache", action="store_true",
                       help="disable the structural result cache")
    audit.add_argument("--show-traces", action="store_true",
                       help="print counterexample schedules")
    audit.add_argument("--json", action="store_true",
                       help="emit structured verdicts/timings as JSON")
    audit.add_argument("--stable-json", action="store_true",
                       help="like --json but without wall-clock and "
                            "warm-state fields: byte-reproducible for a "
                            "fixed --seed, in-process or via --server")
    _add_server_flag(audit)
    _add_obs_flags(audit)

    prove = sub.add_parser(
        "prove",
        help="audit a scenario with the unbounded proof portfolio "
             "(k-induction + IC3 + BMC)",
    )
    prove.add_argument("scenario", help="scenario name (see `list`)")
    prove.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    prove.add_argument("--misconfig", action="store_true",
                       help="inject the scenario's misconfiguration")
    prove.add_argument("--seed", type=int, default=0,
                       help="seed for randomized injections")
    prove.add_argument("--no-slicing", action="store_true",
                       help="verify on the whole network (baseline)")
    prove.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="prove invariants on N worker processes "
                            "(0 = one per CPU; default: sequential)")
    prove.add_argument("--no-cache", action="store_true",
                       help="disable the structural result cache")
    prove.add_argument("--budget", type=int, default=None, metavar="CONFLICTS",
                       help="shared conflict budget per check across the "
                            "portfolio's engines (default: run to completion)")
    prove.add_argument("--max-checks", type=int, default=None, metavar="N",
                       help="cap the portfolio's solver queries per check "
                            "(induction queries are often conflict-free, so "
                            "this is the reliable wall-clock bound)")
    prove.add_argument("--show-traces", action="store_true",
                       help="print counterexample schedules")
    prove.add_argument("--json", action="store_true",
                       help="emit structured verdicts/guarantees as JSON")
    prove.add_argument("--stable-json", action="store_true",
                       help="like --json but without wall-clock and "
                            "warm-state fields: byte-reproducible for a "
                            "fixed --seed, in-process or via --server")
    _add_server_flag(prove)
    _add_obs_flags(prove)

    repair = sub.add_parser(
        "repair",
        help="synthesize a certified patch for an injected fault "
             "(counterexample-guided repair)",
    )
    repair.add_argument("scenario", help="scenario name (see `list`)")
    repair.add_argument("--fault", default=None, metavar="NAME",
                        help="fault label from scenarios/faults.py "
                             "(default: the scenario's first)")
    repair.add_argument("--size", type=int, default=None,
                        help="scenario size (groups/subnets/tenants)")
    repair.add_argument("--seed", type=int, default=0,
                        help="seed for the fault injection (pins the "
                             "victim host/rule; output is reproducible "
                             "per seed)")
    repair.add_argument("--budget", type=int, default=None,
                        metavar="CONFLICTS",
                        help="per-candidate screening conflict budget "
                             "(default: run each check to completion)")
    repair.add_argument("--max-edits", type=int, default=3, metavar="N",
                        help="edit budget per candidate patch "
                             "(rule entries + chain edits; default: 3)")
    repair.add_argument("--max-candidates", type=int, default=32,
                        metavar="N",
                        help="candidate patches to screen before giving "
                             "up (default: 32)")
    repair.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="screen invalidated checks on N workers "
                             "(0 = one per CPU; default: sequential)")
    repair.add_argument("--no-cache", action="store_true",
                        help="disable the warm structural result cache")
    repair.add_argument("--json", action="store_true",
                        help="emit the repair result as JSON "
                             "(schema in README)")
    repair.add_argument("--stable-json", action="store_true",
                        help="like --json but without wall-clock fields: "
                             "byte-reproducible for a fixed --seed")
    _add_server_flag(repair)
    _add_obs_flags(repair)

    watch = sub.add_parser(
        "watch",
        help="replay a churn stream through incremental re-verification",
    )
    watch.add_argument("scenario", help="scenario name (see `list`)")
    watch.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    watch.add_argument("--deltas", type=int, default=10, metavar="N",
                       help="number of churn deltas to replay (default: 10)")
    watch.add_argument("--seed", type=int, default=0,
                       help="seed for the churn stream")
    watch.add_argument("--prove", action="store_true",
                       help="keep tracked checks continuously *proven* "
                            "(portfolio mode): holds verdicts carry "
                            "certificates that later deltas — and, with a "
                            "server-side store, later processes — "
                            "revalidate instead of re-proving")
    watch.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="re-verify invalidated checks on N workers "
                            "(0 = one per CPU; default: sequential)")
    watch.add_argument("--no-cache", action="store_true",
                       help="disable the warm structural result cache")
    watch.add_argument("--json", action="store_true",
                       help="emit per-delta costs and verdicts as JSON")
    watch.add_argument("--stable-json", action="store_true",
                       help="like --json but without wall-clock fields: "
                            "byte-reproducible for a fixed --seed")
    _add_server_flag(watch)
    _add_obs_flags(watch)

    blame = sub.add_parser(
        "blame",
        help="explain verdicts: the minimal set of deny rules, "
             "whitelist policies, and steering paths each holds-verdict "
             "rests on (assumption-level unsat core), or the boxes a "
             "violation's canonical witness traversed",
    )
    blame.add_argument("scenario", help="scenario name (see `list`)")
    blame.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    blame.add_argument("--misconfig", action="store_true",
                       help="inject the scenario's misconfiguration and "
                            "also report the blame drift vs the clean "
                            "baseline")
    blame.add_argument("--fault", default=None, metavar="NAME",
                       help="inject a labeled fault from "
                            "scenarios/faults.py and also report the "
                            "blame drift vs the clean baseline "
                            "(fault localization)")
    blame.add_argument("--seed", type=int, default=0,
                       help="seed for randomized injections")
    blame.add_argument("--no-slicing", action="store_true",
                       help="probe on the whole network (baseline)")
    blame.add_argument("--only", action="append", default=None,
                       metavar="NODE",
                       help="probe only checks whose invariant mentions "
                            "NODE (repeatable)")
    blame.add_argument("--json", action="store_true",
                       help="emit blame sets (and the drift delta) as JSON")
    blame.add_argument("--stable-json", action="store_true",
                       help="like --json but without wall-clock fields: "
                            "blame output is byte-reproducible for a "
                            "fixed --seed, in-process or via --server")
    _add_server_flag(blame)
    _add_obs_flags(blame)

    history = sub.add_parser(
        "history",
        help="per-invariant verdict timelines recorded by drift "
             "detection (watch sessions over a persistent store)",
    )
    history.add_argument("scenario", help="scenario name (see `list`)")
    history.add_argument("--size", type=int, default=None,
                         help="scenario size (groups/subnets/tenants)")
    history.add_argument("--misconfig", action="store_true",
                         help="read the misconfigured variant's shard")
    history.add_argument("--seed", type=int, default=0,
                         help="seed the watched scenario was built with")
    history.add_argument("--label", default=None, metavar="TEXT",
                         help="only timelines whose check label contains "
                              "TEXT (case-insensitive)")
    history.add_argument("--store-dir", default=None, metavar="DIR",
                         help="the daemon's --store-dir; the scenario's "
                              "shard store is located inside it")
    history.add_argument("--store", default=None, metavar="FILE",
                         help="read one store file directly (as written "
                              "by an IncrementalSession checkpoint)")
    history.add_argument("--json", action="store_true",
                         help="emit timelines as JSON")
    history.add_argument("--stable-json", action="store_true",
                         help="like --json but with warm-state fields "
                              "(lineage/engine) stripped")
    _add_server_flag(history)

    stats = sub.add_parser(
        "stats",
        help="cost breakdown of a recorded trace (top spans by "
             "exclusive time)",
    )
    stats.add_argument("trace",
                       help="trace file written by --trace, or a retained "
                            "slow-request trace from the daemon "
                            "(<store>/traces/<request-id>.trace.json)")
    stats.add_argument("--top", type=int, default=20, metavar="K",
                       help="rows to show (default: 20)")
    stats.add_argument("--by", default="name", metavar="KEY",
                       help="aggregation key: name, cat, or tag:<key> "
                            "(default: name)")

    serve = sub.add_parser(
        "serve",
        help="resident verification daemon: warm caches, solvers, and a "
             "persistent certificate store shared across client runs",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    start = serve_sub.add_parser("start", help="run the daemon (foreground)")
    start.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    start.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"bind port; 0 = ephemeral, printed on stdout "
                            f"(default: {DEFAULT_PORT})")
    start.add_argument("--store-dir", default=None, metavar="DIR",
                       help="persist verdicts + proof certificates here "
                            "(one store file per network shard); omit to "
                            "keep warm state in memory only")
    start.add_argument("--cache-entries", type=int, default=4096, metavar="N",
                       help="per-shard result-cache LRU bound "
                            "(default: 4096)")
    start.add_argument("--max-shards", type=int, default=8, metavar="N",
                       help="resident network shards before LRU eviction "
                            "(default: 8)")
    start.add_argument("--max-inflight", type=int, default=2, metavar="N",
                       help="concurrent verification requests "
                            "(default: 2)")
    start.add_argument("--queue-depth", type=int, default=16, metavar="N",
                       help="waiting requests before the daemon answers "
                            "busy/503 (default: 16)")
    start.add_argument("--quiet", action="store_true",
                       help="raise the stderr event threshold to warning "
                            "(the JSONL event log still records access "
                            "events)")
    start.add_argument("--log-file", default=None, metavar="FILE",
                       help="structured JSONL event log (default: "
                            "<store-dir>/events.jsonl when --store-dir is "
                            "set, else stderr only)")
    start.add_argument("--log-max-bytes", type=int, default=4 << 20,
                       metavar="BYTES",
                       help="size-rotate the JSONL logs (events.jsonl and "
                            "the flight recorder's requests.jsonl) past "
                            "this many bytes, keeping one .1 backup "
                            "(default: 4 MiB)")
    start.add_argument("--slow-trace", type=float, default=5.0,
                       metavar="SECONDS",
                       help="retain the full span trace of requests slower "
                            "than this, served by /v1/requests/<id>/trace "
                            "(default: 5.0)")
    start.add_argument("--soft-deadline", type=float, default=60.0,
                       metavar="SECONDS",
                       help="watchdog flags in-flight requests older than "
                            "this: a request-stall event + the "
                            "repro_serve_slow_requests_total metric "
                            "(0 disables; default: 60)")
    start.add_argument("--recorder-capacity", type=int, default=256,
                       metavar="N",
                       help="flight-recorder ring size: recent request "
                            "summaries kept in memory for /v1/requests "
                            "(default: 256)")
    start.add_argument("--retained-traces", type=int, default=16, metavar="N",
                       help="slow-request traces kept on disk before the "
                            "oldest is deleted (default: 16)")
    start.add_argument("--no-request-traces", action="store_true",
                       help="disable per-request span tracing (slow "
                            "requests then retain no trace)")
    stop = serve_sub.add_parser("stop", help="checkpoint stores and stop")
    stop.add_argument("--server", default=None, metavar="URL",
                      help=f"daemon to stop (default: "
                           f"127.0.0.1:{DEFAULT_PORT})")
    status = serve_sub.add_parser("status",
                                  help="daemon + per-shard statistics")
    status.add_argument("--server", default=None, metavar="URL",
                        help=f"daemon to query (default: "
                             f"127.0.0.1:{DEFAULT_PORT})")

    top = sub.add_parser(
        "top",
        help="live daemon dashboard: requests, latency percentiles, "
             "shards, in-flight work (polls /status and /metrics)",
    )
    top.add_argument("--server", default=None, metavar="URL",
                     help=f"daemon to watch (default: "
                          f"127.0.0.1:{DEFAULT_PORT})")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="refresh period (default: 2.0)")
    top.add_argument("-n", "--iterations", type=int, default=0, metavar="N",
                     help="stop after N refreshes (default: run until "
                          "interrupted)")

    tail = sub.add_parser(
        "tail",
        help="follow the daemon's request history (/v1/requests) or a "
             "structured JSONL event log",
    )
    tail.add_argument("--server", default=None, metavar="URL",
                      help=f"daemon whose recent requests to print "
                           f"(default: 127.0.0.1:{DEFAULT_PORT})")
    tail.add_argument("--log", default=None, metavar="FILE",
                      help="read a JSONL event log file instead of asking "
                           "a daemon")
    tail.add_argument("-n", "--lines", type=int, default=20, metavar="N",
                      help="entries to print (default: 20)")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep polling for new entries until interrupted")
    tail.add_argument("--interval", type=float, default=1.0,
                      metavar="SECONDS",
                      help="poll period with --follow (default: 1.0)")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "tail":
        return _cmd_tail(args)
    if getattr(args, "jobs", 0) < 0:
        parser.error("--jobs must be >= 0")
    with _observability(args):
        if args.command == "blame":
            return _cmd_blame(args)
        if args.command == "history":
            return _cmd_history(args)
        if args.command == "repair":
            return _cmd_repair(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "prove":
            return _cmd_audit(args, prove="portfolio")
        return _cmd_audit(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
