"""Command-line interface: audit the paper's scenarios from a shell.

::

    python -m repro list
    python -m repro audit enterprise --size 3
    python -m repro audit datacenter --size 3 --misconfig --seed 7
    python -m repro audit isp --size 3 --misconfig --show-traces
    python -m repro prove isp --size 3 --json
    python -m repro watch enterprise --deltas 10
    python -m repro audit enterprise --json > verdicts.json
    python -m repro audit enterprise --trace run.json --metrics
    python -m repro stats run.json --top 15

``audit`` builds the scenario (optionally with its §5.1/§5.2
misconfiguration injected), verifies every invariant in its check list,
compares against the expected verdicts, and exits non-zero when any
verdict is unexpected — usable as a regression gate.

``prove`` is ``audit`` with the unbounded proof portfolio
(:mod:`repro.proof`): every check runs BMC-for-bugs alongside
k-induction and IC3/PDR, and each row reports its guarantee strength —
``holds (unbounded)`` backed by an independently re-checked inductive
certificate, or ``bounded`` with the limiting engines' reason.

``watch`` replays a churn stream (a generated sequence of network
deltas — firewall-rule edits, host/tenant provisioning, link flaps)
through an incremental re-verification session and reports what each
delta cost to absorb: how many checks were invalidated, how many
verdicts the warm cache answered, and how many solver runs were left.

Both commands take ``--json`` to emit machine-readable verdicts and
timings on stdout (CI and the benchmarks consume this instead of
parsing text).

Every verification command also takes ``--trace OUT.json`` (record a
hierarchical span trace — the file loads directly in
``chrome://tracing``/Perfetto and doubles as the stable run record) and
``--metrics [OUT.prom]`` (dump the Prometheus-style metrics text; to
stderr when no path is given, so ``--json`` stdout stays clean).
``repro stats OUT.json`` renders the exclusive-time cost breakdown of
a recorded trace.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, Optional

from . import obs
from .core.engine import default_workers, execute_jobs
from .incremental import IncrementalSession
from .netmodel.bmc import SOLVER_COUNTERS
from .scenarios import (
    CHURN_GENERATORS,
    ScenarioBundle,
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
    datacenter_with_caches,
    enterprise,
    isp,
    multitenant,
)

__all__ = ["main", "SCENARIOS"]


def _build_datacenter(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter(n_groups=size, delete_rules=size // 2 if misconfig else 0,
                      seed=seed)


def _build_redundancy(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_redundancy(n_groups=size, backup_broken=misconfig, seed=seed)


def _build_traversal(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_traversal(n_groups=size,
                                reroute_hosts=size if misconfig else 0, seed=seed)


def _build_caches(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_with_caches(n_groups=size,
                                  delete_cache_acls=1 if misconfig else 0, seed=seed)


def _build_enterprise(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    deleted = ()
    if misconfig:
        bundle = enterprise(n_subnets=size)
        quarantined = sorted(
            h.name for h in bundle.topology.hosts if h.name.startswith("quar")
        )
        # Seeded victim choice: library callers could always pick any
        # host; the CLI's injection is now reproducible per --seed too.
        deleted = (random.Random(seed).choice(quarantined),)
    return enterprise(n_subnets=size, deny_deleted_for=deleted)


def _build_multitenant(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    if misconfig:
        raise SystemExit("multitenant has no misconfiguration injector")
    return multitenant(n_tenants=size)


def _build_isp(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return isp(n_subnets=size, scrubber_bypasses_fw=misconfig)


SCENARIOS: Dict[str, Callable[[int, bool, int], ScenarioBundle]] = {
    "datacenter": _build_datacenter,
    "datacenter-redundancy": _build_redundancy,
    "datacenter-traversal": _build_traversal,
    "datacenter-caches": _build_caches,
    "enterprise": _build_enterprise,
    "multitenant": _build_multitenant,
    "isp": _build_isp,
}

_DEFAULT_SIZES = {
    "datacenter": 3,
    "datacenter-redundancy": 3,
    "datacenter-traversal": 2,
    "datacenter-caches": 2,
    "enterprise": 3,
    "multitenant": 2,
    "isp": 3,
}


def _add_obs_flags(parser) -> None:
    """``--trace`` / ``--metrics`` on every verification subcommand."""
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="record a span trace + run record to OUT.json "
                             "(Chrome-trace compatible; see `repro stats`)")
    parser.add_argument("--metrics", nargs="?", const="-", default=None,
                        metavar="OUT.prom",
                        help="dump Prometheus-style metrics text (to stderr "
                             "when no path is given, keeping --json stdout "
                             "clean)")


@contextmanager
def _observability(args):
    """Enable tracing/metrics around one CLI command when ``--trace`` or
    ``--metrics`` was given; write the outputs on exit.

    The root span is named after the command and opened *before* the
    scenario is built, so the recorded tree attributes (nearly) all of
    the command's wall time — ``repro stats`` reports the coverage.
    """
    trace_out = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics", None)
    if trace_out is None and metrics_out is None:
        yield
        return
    meta = {"command": args.command, "scenario": getattr(args, "scenario", None),
            "seed": getattr(args, "seed", None)}
    started = time.perf_counter()
    with obs.observe(meta=dict(meta)) as (tracer, registry):
        try:
            with tracer.span(args.command, cat="cli",
                             scenario=meta["scenario"]):
                yield
        finally:
            meta["wall_seconds"] = round(time.perf_counter() - started, 6)
            if trace_out is not None:
                obs.write_run_record(trace_out, tracer, registry, meta=meta)
            if metrics_out is not None:
                text = registry.to_prometheus()
                if metrics_out == "-":
                    sys.stderr.write(text)
                else:
                    with open(metrics_out, "w", encoding="utf-8") as fh:
                        fh.write(text)


def _cmd_stats(args) -> int:
    try:
        payload = obs.load_trace(args.trace)
    except (OSError, ValueError) as err:
        print(f"cannot load trace {args.trace!r}: {err}")
        return 2
    print(obs.render_stats(payload, top=args.top, by=args.by))
    return 0


def _cmd_list(_args) -> int:
    print("available scenarios (paper section in parentheses):")
    notes = {
        "datacenter": "Fig 1, §5.1 Rules",
        "datacenter-redundancy": "§5.1 Redundancy (primary firewall down)",
        "datacenter-traversal": "§5.1 Traversal (IDPS bypass)",
        "datacenter-caches": "§5.2 data isolation",
        "enterprise": "Fig 6, §5.3.1",
        "multitenant": "§5.3.2 EC2 security groups",
        "isp": "Fig 9a, §5.3.3 scrubbing",
    }
    for name in SCENARIOS:
        churn = "  [watchable]" if name in CHURN_GENERATORS else ""
        print(f"  {name:24s} {notes[name]}{churn}")
    return 0


def _build_bundle(args):
    """The scenario bundle for ``args``, or ``None`` (with a message)
    when the scenario name is unknown — callers exit 2."""
    builder = SCENARIOS.get(args.scenario)
    if builder is None:
        print(f"unknown scenario {args.scenario!r}; see `python -m repro list`")
        return None
    size = args.size if args.size is not None else _DEFAULT_SIZES[args.scenario]
    misconfig = getattr(args, "misconfig", False)
    return builder(size, misconfig, args.seed)


def _certificate_row(stats) -> Optional[dict]:
    """Compact certificate summary for ``prove --json`` rows."""
    cert = stats.get("certificate")
    if cert is None:
        return None
    row = {"kind": cert.kind, "summary": cert.summary()}
    if cert.kind == "kinduction":
        row["k"] = cert.k
    else:
        row["n_clauses"] = len(cert.clauses)
        row["n_literals"] = sum(len(c) for c in cert.clauses)
        shrink = stats.get("certificate_minimized")
        if shrink is not None:
            row["minimized"] = shrink
    return row


def _cmd_audit(args, prove: Optional[str] = None) -> int:
    bundle = _build_bundle(args)
    if bundle is None:
        return 2
    vmn = bundle.vmn(use_slicing=not args.no_slicing,
                     use_cache=not args.no_cache)
    if not args.json:
        print(f"{bundle.name}: {bundle.topology.describe()}")
        print(f"policy equivalence classes: {vmn.policy_classes.count}")

    workers = args.jobs if args.jobs > 0 else None  # None = one per CPU
    bmc_kwargs = {}
    if prove and getattr(args, "budget", None):
        bmc_kwargs["max_conflicts"] = args.budget
    if prove and getattr(args, "max_checks", None):
        bmc_kwargs["max_checks"] = args.max_checks
    started = time.perf_counter()
    job_list = [
        vmn.job_for(check.invariant, index=i, prove=prove, **bmc_kwargs)
        for i, check in enumerate(bundle.checks)
    ]
    results = execute_jobs(job_list, workers=workers, cache=vmn.result_cache,
                           solver_pool=vmn.solver_pool)
    elapsed = time.perf_counter() - started

    mismatches = 0
    rows = []
    solver_totals = {k: 0 for k in _SOLVER_COUNTERS}
    guarantees = {"unbounded": 0, "bounded": 0}
    shrink_totals = {"clauses_before": 0, "clauses_after": 0}
    for check, job, result in zip(bundle.checks, job_list, results):
        ok = result.status == check.expected
        mismatches += 0 if ok else 1
        solver = _solver_row(result)
        if solver is not None and not result.cache_hit:
            for key in _SOLVER_COUNTERS:
                solver_totals[key] += solver[key]
        row = {
            "label": check.label,
            "invariant": check.invariant.describe(),
            "status": result.status,
            "expected": check.expected,
            "ok": ok,
            "slice_size": job.slice_size,
            "cached": result.cache_hit,
            "solve_seconds": round(result.solve_seconds, 4),
            "solver": solver,
            "trace": str(result.trace) if result.trace is not None else None,
        }
        if prove:
            stats = result.stats
            guarantee = stats.get("guarantee", "bounded")
            guarantees[guarantee] = guarantees.get(guarantee, 0) + 1
            shrunk = stats.get("certificate_minimized")
            if shrunk is not None and not result.cache_hit:
                shrink_totals["clauses_before"] += shrunk["clauses_before"]
                shrink_totals["clauses_after"] += shrunk["clauses_after"]
            row.update({
                "guarantee": guarantee,
                "engine": stats.get("proof_engine"),
                "note": stats.get("proof_note"),
                "certificate": _certificate_row(stats),
                "recheck_ok": stats.get("recheck_ok"),
                "solver_checks": stats.get("solver_checks"),
            })
        rows.append(row)
        if args.json:
            continue
        where = f"slice={job.slice_size}" if job.slice_size else "whole-net"
        cached = ", cached" if result.cache_hit else ""
        strength = ""
        if prove:
            strength = (
                f" [{row['guarantee']}"
                + (f" via {row['engine']}" if row["engine"] else "")
                + "]"
            )
        print(f"  {check.label:30s} {result.status:9s}{strength} "
              f"({where}, {result.solve_seconds:.2f}s{cached})"
              f"{'' if ok else f'  EXPECTED {check.expected}'}")
        if args.show_traces and result.trace is not None:
            for line in str(result.trace).splitlines()[1:]:
                print("     ", line)

    if args.json:
        payload = {
            "command": "prove" if prove else "audit",
            "scenario": bundle.name,
            "policy_classes": vmn.policy_classes.count,
            "n_checks": len(rows),
            "mismatches": mismatches,
            "elapsed_seconds": round(elapsed, 3),
            "solver_totals": solver_totals,
            "checks": rows,
        }
        if prove:
            payload["guarantees"] = guarantees
            payload["certificate_shrink"] = {
                **shrink_totals,
                "ratio": (
                    round(
                        shrink_totals["clauses_before"]
                        / shrink_totals["clauses_after"],
                        2,
                    )
                    if shrink_totals["clauses_after"]
                    else None
                ),
            }
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        tail = ""
        if prove:
            tail = (f"; {guarantees['unbounded']} unbounded / "
                    f"{guarantees['bounded']} bounded guarantees")
        print(f"{len(bundle.checks)} invariants in {elapsed:.1f}s; "
              f"{mismatches} unexpected verdicts{tail}")
    return 0 if mismatches == 0 else 1


#: Per-check solver-work counters surfaced in ``audit --json``.  These
#: are this check's *deltas* of the solver's cumulative counters (the
#: incremental solver never resets them — ``cumulative`` in each row
#: carries the running totals of the warm solver that served it).
_SOLVER_COUNTERS = SOLVER_COUNTERS


def _solver_row(result) -> Optional[dict]:
    """Solver statistics of one check, or ``None`` for pre-solver-era
    cached results that carry no counters."""
    stats = result.stats
    if not all(key in stats for key in _SOLVER_COUNTERS):
        return None
    row = {key: stats[key] for key in _SOLVER_COUNTERS}
    row.update(
        vars=stats.get("vars"),
        clauses=stats.get("clauses"),
        learnts=stats.get("learnts"),
        warm=bool(stats.get("warm")),
        cumulative=stats.get("cumulative"),
    )
    return row


def _report_row(report) -> dict:
    return {
        "version": report.version,
        "delta": report.delta,
        "n_checks": len(report),
        "carried": report.carried,
        "cache_hits": report.cache_hits,
        "solver_runs": report.solver_runs,
        "certificates_reused": report.certificates_reused,
        "metrics": report.metrics,
        "retired": [c.describe() for c in report.retired],
        "added": report.added,
        "seconds": round(report.seconds, 3),
        "drift": [
            {"label": o.check.describe(), "status": o.status,
             "expected": o.check.expected}
            for o in report if o.ok is False
        ],
        "checks": {o.check.describe(): o.status for o in report},
    }


def _cmd_watch(args) -> int:
    generator = CHURN_GENERATORS.get(args.scenario)
    if generator is None and args.scenario in SCENARIOS:
        print(f"no churn generator for {args.scenario!r}; watchable: "
              + ", ".join(sorted(CHURN_GENERATORS)))
        return 2
    bundle = _build_bundle(args)
    if bundle is None:
        return 2
    events = generator(bundle, n_events=args.deltas, seed=args.seed)
    json_mode = args.json or args.stable_json

    session = IncrementalSession.from_bundle(
        bundle,
        # The session treats jobs=None as sequential (like verify_all),
        # so "0 = one per CPU" is resolved here.
        jobs=args.jobs if args.jobs > 0 else default_workers(),
        use_cache=not args.no_cache,
    )
    reports = [session.baseline()]
    if not json_mode:
        print(f"{bundle.name}: watching {len(events)} deltas "
              f"over {len(session.checks)} checks")
        print("  " + reports[0].summary())
    for event in events:
        report = session.apply(event.delta, new_checks=event.new_checks)
        reports.append(report)
        if not json_mode:
            drift = f"; DRIFT: {report.mismatches}" if report.mismatches else ""
            print("  " + report.summary() + drift)

    churn = reports[1:]
    totals = {
        "deltas": len(churn),
        "checks_reverified": sum(r.invalidated for r in churn),
        "checks_carried": sum(r.carried for r in churn),
        "cache_hits": sum(r.cache_hits for r in churn),
        "solver_runs": sum(r.solver_runs for r in churn),
        "certificates_reused": sum(r.certificates_reused for r in churn),
        "seconds": round(sum(r.seconds for r in churn), 3),
        "full_audit_equivalent_checks": sum(len(r) for r in churn),
    }
    if json_mode:
        _emit_json({
            "command": "watch",
            "scenario": bundle.name,
            "seed": args.seed,
            "baseline": _report_row(reports[0]),
            "versions": [_report_row(r) for r in churn],
            "totals": totals,
        }, args.stable_json)
    else:
        print(f"absorbed {totals['deltas']} deltas with "
              f"{totals['solver_runs']} solver runs "
              f"(vs {totals['full_audit_equivalent_checks']} checks across "
              f"full re-audits); {totals['cache_hits']} cache hits, "
              f"{totals['checks_carried']} verdicts carried, "
              f"{totals['seconds']}s total")
    drifted = sum(r.mismatches for r in churn[-1:])
    return 0 if drifted == 0 else 1


#: Keys dropped by ``--stable-json``: wall-clock fields, plus solver-
#: *internal* artifacts (clause counts of learned certificates, shrink
#: statistics, proof-engine identity) whose exact values depend on the
#: process's memory layout (term interning keys hash object ids, so
#: search tie-breaking varies run to run).  Everything that remains —
#: verdicts, patches, costs, attempt sequence, screening work counts —
#: is deterministic for a pinned ``--seed``, making the stripped output
#: byte-reproducible across process invocations.
_UNSTABLE_KEYS = frozenset({
    "seconds", "solve_seconds", "elapsed_seconds", "encode_seconds",
    "timing",
    "summary", "minimized", "solver_checks", "engine",
    # Per-delta registry deltas include timing histograms and solver
    # effort counters — faithful, but not byte-stable across runs.
    "metrics",
})


def _strip_timing(payload):
    """A copy of a JSON payload with every unstable field removed."""
    if isinstance(payload, dict):
        return {
            k: _strip_timing(v)
            for k, v in payload.items()
            if k not in _UNSTABLE_KEYS
        }
    if isinstance(payload, list):
        return [_strip_timing(v) for v in payload]
    return payload


def _emit_json(payload, stable: bool) -> None:
    if stable:
        payload = _strip_timing(payload)
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")


def _cmd_repair(args) -> int:
    from .scenarios.faults import FAULTS, build_fault, fault_names

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; see `python -m repro list`")
        return 2
    if not fault_names(args.scenario):
        repairable = sorted({name.split("/", 1)[0] for name in FAULTS})
        print(f"no faults registered for {args.scenario!r}; repairable: "
              + ", ".join(repairable))
        return 2
    try:
        fault = build_fault(args.scenario, args.fault, args.size, args.seed)
    except KeyError as err:
        print(str(err.args[0]))
        return 2
    bundle = fault.bundle
    json_mode = args.json or args.stable_json
    if not json_mode:
        print(f"{bundle.name}: {fault.description}")
        print(f"  injected: {fault.fault.describe()}")

    # Canonical (lex-minimal) counterexamples make hint extraction —
    # and therefore the candidate stream and the accepted patch —
    # reproducible across runs, not just the verdicts.
    bmc_kwargs = {"canonical_trace": True}
    if args.budget:
        bmc_kwargs["max_conflicts"] = args.budget
    session = IncrementalSession.from_bundle(
        bundle,
        jobs=args.jobs if args.jobs > 0 else default_workers(),
        use_cache=not args.no_cache,
        bmc_kwargs=bmc_kwargs,
    )
    result = session.repair(
        max_edits=args.max_edits,
        max_candidates=args.max_candidates,
    )
    # Post-patch verdicts of every tracked check (the patch, when
    # accepted, is already applied to the session's network).
    final_mismatches = sum(1 for o in session.outcomes if o.ok is False)

    if json_mode:
        payload = {
            "command": "repair",
            "scenario": bundle.name,
            "fault": {
                "name": fault.name,
                "description": fault.description,
                "deltas": [fault.fault.describe()],
            },
            "seed": args.seed,
            **result.to_json(),
            "final_audit": {
                "n_checks": len(session.outcomes),
                "mismatches": final_mismatches,
            },
        }
        _emit_json(payload, args.stable_json)
    else:
        print(f"  {result.summary()}")
        for desc in result.patch_deltas:
            print(f"    patch: {desc}")
        for label, row in sorted(result.certificate_rows.items()):
            print(f"    certified: {label} [{row['summary']}]")
        if result.best_effort and not result.ok:
            best = result.best_effort
            print(f"    best effort: {best.label} "
                  f"({best.mismatches} mismatch(es) left)")
        print(f"  {len(session.outcomes)} checks after repair; "
              f"{final_mismatches} mismatches; "
              f"{result.candidates_tried} candidates screened in "
              f"{result.seconds:.1f}s")
    return 0 if result.ok and final_mismatches == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VMN reproduction — verify reachability in networks "
                    "with mutable datapaths",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios")

    audit = sub.add_parser("audit", help="verify a scenario's invariant set")
    audit.add_argument("scenario", help="scenario name (see `list`)")
    audit.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    audit.add_argument("--misconfig", action="store_true",
                       help="inject the scenario's misconfiguration")
    audit.add_argument("--seed", type=int, default=0,
                       help="seed for randomized injections")
    audit.add_argument("--no-slicing", action="store_true",
                       help="verify on the whole network (baseline)")
    audit.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="verify invariants on N worker processes "
                            "(0 = one per CPU; default: sequential)")
    audit.add_argument("--no-cache", action="store_true",
                       help="disable the structural result cache")
    audit.add_argument("--show-traces", action="store_true",
                       help="print counterexample schedules")
    audit.add_argument("--json", action="store_true",
                       help="emit structured verdicts/timings as JSON")
    _add_obs_flags(audit)

    prove = sub.add_parser(
        "prove",
        help="audit a scenario with the unbounded proof portfolio "
             "(k-induction + IC3 + BMC)",
    )
    prove.add_argument("scenario", help="scenario name (see `list`)")
    prove.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    prove.add_argument("--misconfig", action="store_true",
                       help="inject the scenario's misconfiguration")
    prove.add_argument("--seed", type=int, default=0,
                       help="seed for randomized injections")
    prove.add_argument("--no-slicing", action="store_true",
                       help="verify on the whole network (baseline)")
    prove.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="prove invariants on N worker processes "
                            "(0 = one per CPU; default: sequential)")
    prove.add_argument("--no-cache", action="store_true",
                       help="disable the structural result cache")
    prove.add_argument("--budget", type=int, default=None, metavar="CONFLICTS",
                       help="shared conflict budget per check across the "
                            "portfolio's engines (default: run to completion)")
    prove.add_argument("--max-checks", type=int, default=None, metavar="N",
                       help="cap the portfolio's solver queries per check "
                            "(induction queries are often conflict-free, so "
                            "this is the reliable wall-clock bound)")
    prove.add_argument("--show-traces", action="store_true",
                       help="print counterexample schedules")
    prove.add_argument("--json", action="store_true",
                       help="emit structured verdicts/guarantees as JSON")
    _add_obs_flags(prove)

    repair = sub.add_parser(
        "repair",
        help="synthesize a certified patch for an injected fault "
             "(counterexample-guided repair)",
    )
    repair.add_argument("scenario", help="scenario name (see `list`)")
    repair.add_argument("--fault", default=None, metavar="NAME",
                        help="fault label from scenarios/faults.py "
                             "(default: the scenario's first)")
    repair.add_argument("--size", type=int, default=None,
                        help="scenario size (groups/subnets/tenants)")
    repair.add_argument("--seed", type=int, default=0,
                        help="seed for the fault injection (pins the "
                             "victim host/rule; output is reproducible "
                             "per seed)")
    repair.add_argument("--budget", type=int, default=None,
                        metavar="CONFLICTS",
                        help="per-candidate screening conflict budget "
                             "(default: run each check to completion)")
    repair.add_argument("--max-edits", type=int, default=3, metavar="N",
                        help="edit budget per candidate patch "
                             "(rule entries + chain edits; default: 3)")
    repair.add_argument("--max-candidates", type=int, default=32,
                        metavar="N",
                        help="candidate patches to screen before giving "
                             "up (default: 32)")
    repair.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="screen invalidated checks on N workers "
                             "(0 = one per CPU; default: sequential)")
    repair.add_argument("--no-cache", action="store_true",
                        help="disable the warm structural result cache")
    repair.add_argument("--json", action="store_true",
                        help="emit the repair result as JSON "
                             "(schema in README)")
    repair.add_argument("--stable-json", action="store_true",
                        help="like --json but without wall-clock fields: "
                             "byte-reproducible for a fixed --seed")
    _add_obs_flags(repair)

    watch = sub.add_parser(
        "watch",
        help="replay a churn stream through incremental re-verification",
    )
    watch.add_argument("scenario", help="scenario name (see `list`)")
    watch.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    watch.add_argument("--deltas", type=int, default=10, metavar="N",
                       help="number of churn deltas to replay (default: 10)")
    watch.add_argument("--seed", type=int, default=0,
                       help="seed for the churn stream")
    watch.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="re-verify invalidated checks on N workers "
                            "(0 = one per CPU; default: sequential)")
    watch.add_argument("--no-cache", action="store_true",
                       help="disable the warm structural result cache")
    watch.add_argument("--json", action="store_true",
                       help="emit per-delta costs and verdicts as JSON")
    watch.add_argument("--stable-json", action="store_true",
                       help="like --json but without wall-clock fields: "
                            "byte-reproducible for a fixed --seed")
    _add_obs_flags(watch)

    stats = sub.add_parser(
        "stats",
        help="cost breakdown of a recorded trace (top spans by "
             "exclusive time)",
    )
    stats.add_argument("trace", help="trace file written by --trace")
    stats.add_argument("--top", type=int, default=20, metavar="K",
                       help="rows to show (default: 20)")
    stats.add_argument("--by", default="name", metavar="KEY",
                       help="aggregation key: name, cat, or tag:<key> "
                            "(default: name)")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    with _observability(args):
        if args.command == "repair":
            return _cmd_repair(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "prove":
            return _cmd_audit(args, prove="portfolio")
        return _cmd_audit(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
