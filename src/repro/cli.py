"""Command-line interface: audit the paper's scenarios from a shell.

::

    python -m repro list
    python -m repro audit enterprise --size 3
    python -m repro audit datacenter --size 3 --misconfig --seed 7
    python -m repro audit isp --size 3 --misconfig --show-traces

``audit`` builds the scenario (optionally with its §5.1/§5.2
misconfiguration injected), verifies every invariant in its check list,
compares against the expected verdicts, and exits non-zero when any
verdict is unexpected — usable as a regression gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from .core.engine import execute_jobs
from .scenarios import (
    ScenarioBundle,
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
    datacenter_with_caches,
    enterprise,
    isp,
    multitenant,
)

__all__ = ["main", "SCENARIOS"]


def _build_datacenter(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter(n_groups=size, delete_rules=size // 2 if misconfig else 0,
                      seed=seed)


def _build_redundancy(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_redundancy(n_groups=size, backup_broken=misconfig, seed=seed)


def _build_traversal(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_traversal(n_groups=size,
                                reroute_hosts=size if misconfig else 0, seed=seed)


def _build_caches(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_with_caches(n_groups=size,
                                  delete_cache_acls=1 if misconfig else 0, seed=seed)


def _build_enterprise(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    deleted = ()
    if misconfig:
        bundle = enterprise(n_subnets=size)
        quarantined = [
            h.name for h in bundle.topology.hosts if h.name.startswith("quar")
        ]
        deleted = tuple(quarantined[:1])
    return enterprise(n_subnets=size, deny_deleted_for=deleted)


def _build_multitenant(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    if misconfig:
        raise SystemExit("multitenant has no misconfiguration injector")
    return multitenant(n_tenants=size)


def _build_isp(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return isp(n_subnets=size, scrubber_bypasses_fw=misconfig)


SCENARIOS: Dict[str, Callable[[int, bool, int], ScenarioBundle]] = {
    "datacenter": _build_datacenter,
    "datacenter-redundancy": _build_redundancy,
    "datacenter-traversal": _build_traversal,
    "datacenter-caches": _build_caches,
    "enterprise": _build_enterprise,
    "multitenant": _build_multitenant,
    "isp": _build_isp,
}

_DEFAULT_SIZES = {
    "datacenter": 3,
    "datacenter-redundancy": 3,
    "datacenter-traversal": 2,
    "datacenter-caches": 2,
    "enterprise": 3,
    "multitenant": 2,
    "isp": 3,
}


def _cmd_list(_args) -> int:
    print("available scenarios (paper section in parentheses):")
    notes = {
        "datacenter": "Fig 1, §5.1 Rules",
        "datacenter-redundancy": "§5.1 Redundancy (primary firewall down)",
        "datacenter-traversal": "§5.1 Traversal (IDPS bypass)",
        "datacenter-caches": "§5.2 data isolation",
        "enterprise": "Fig 6, §5.3.1",
        "multitenant": "§5.3.2 EC2 security groups",
        "isp": "Fig 9a, §5.3.3 scrubbing",
    }
    for name in SCENARIOS:
        print(f"  {name:24s} {notes[name]}")
    return 0


def _cmd_audit(args) -> int:
    builder = SCENARIOS.get(args.scenario)
    if builder is None:
        print(f"unknown scenario {args.scenario!r}; see `python -m repro list`")
        return 2
    size = args.size if args.size is not None else _DEFAULT_SIZES[args.scenario]
    bundle = builder(size, args.misconfig, args.seed)
    vmn = bundle.vmn(use_slicing=not args.no_slicing,
                     use_cache=not args.no_cache)
    print(f"{bundle.name}: {bundle.topology.describe()}")
    print(f"policy equivalence classes: {vmn.policy_classes.count}")

    workers = args.jobs if args.jobs > 0 else None  # None = one per CPU
    started = time.perf_counter()
    job_list = [
        vmn.job_for(check.invariant, index=i)
        for i, check in enumerate(bundle.checks)
    ]
    results = execute_jobs(job_list, workers=workers, cache=vmn.result_cache)

    mismatches = 0
    for check, job, result in zip(bundle.checks, job_list, results):
        ok = result.status == check.expected
        mismatches += 0 if ok else 1
        where = f"slice={job.slice_size}" if job.slice_size else "whole-net"
        cached = ", cached" if result.cache_hit else ""
        print(f"  {check.label:30s} {result.status:9s} "
              f"({where}, {result.solve_seconds:.2f}s{cached})"
              f"{'' if ok else f'  EXPECTED {check.expected}'}")
        if args.show_traces and result.trace is not None:
            for line in str(result.trace).splitlines()[1:]:
                print("     ", line)
    elapsed = time.perf_counter() - started
    print(f"{len(bundle.checks)} invariants in {elapsed:.1f}s; "
          f"{mismatches} unexpected verdicts")
    return 0 if mismatches == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VMN reproduction — verify reachability in networks "
                    "with mutable datapaths",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios")

    audit = sub.add_parser("audit", help="verify a scenario's invariant set")
    audit.add_argument("scenario", help="scenario name (see `list`)")
    audit.add_argument("--size", type=int, default=None,
                       help="scenario size (groups/subnets/tenants)")
    audit.add_argument("--misconfig", action="store_true",
                       help="inject the scenario's misconfiguration")
    audit.add_argument("--seed", type=int, default=0,
                       help="seed for randomized injections")
    audit.add_argument("--no-slicing", action="store_true",
                       help="verify on the whole network (baseline)")
    audit.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="verify invariants on N worker processes "
                            "(0 = one per CPU; default: sequential)")
    audit.add_argument("--no-cache", action="store_true",
                       help="disable the structural result cache")
    audit.add_argument("--show-traces", action="store_true",
                       help="print counterexample schedules")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    return _cmd_audit(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
